use crate::kernel::{self, DenseIndex, KernelMode};
use crate::list::intersect_sorted;
use crate::types::Clique;
use dkc_graph::{Dag, NodeId};

/// A clique together with its clique score `s_c(C)` (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredClique {
    /// The clique members (sorted).
    pub clique: Clique,
    /// Sum of the members' node scores.
    pub score: u64,
}

/// `FindOne` of Algorithm 1: finds the *first* k-clique rooted at a node.
///
/// Given a root `u`, searches for any (k-1)-clique inside the still-valid
/// part of `N⁺(u)` and returns `{u} ∪ clique`. The search visits candidates
/// in ascending node id — in both kernels — so results are deterministic.
/// Recursion buffers are reused across calls — create one finder per solve,
/// then call [`FirstFinder::find`] for every processed node.
pub struct FirstFinder<'a> {
    dag: &'a Dag,
    k: usize,
    mode: KernelMode,
    stack: Vec<NodeId>,
    bufs: Vec<Vec<NodeId>>,
    levels: Vec<Vec<u64>>,
    dense: DenseIndex,
}

impl<'a> FirstFinder<'a> {
    /// Creates a finder for k-cliques (`k >= 2`).
    pub fn new(dag: &'a Dag, k: usize) -> Self {
        Self::with_kernel(dag, k, KernelMode::default())
    }

    /// [`FirstFinder::new`] with an explicit intersection kernel; every
    /// mode finds the identical clique.
    pub fn with_kernel(dag: &'a Dag, k: usize, mode: KernelMode) -> Self {
        assert!(k >= 2, "FirstFinder requires k >= 2");
        FirstFinder {
            dag,
            k,
            mode,
            stack: Vec::with_capacity(k),
            bufs: vec![Vec::new(); k],
            levels: vec![Vec::new(); k],
            dense: DenseIndex::default(),
        }
    }

    /// Returns the first k-clique rooted at `root` whose members are all
    /// `valid`, or `None` when no such clique exists.
    pub fn find(&mut self, root: NodeId, valid: &[bool]) -> Option<Clique> {
        if !valid[root as usize] {
            return None;
        }
        self.stack.clear();
        self.stack.push(root);
        let found = if self.mode.dense_for(self.k, self.dag.out_degree(root)) {
            let d = self.dense.build_filtered(self.dag, root, valid);
            let mut cand = std::mem::take(&mut self.levels[0]);
            kernel::fill_full(&mut cand, d);
            let found = self.recurse_dense(self.k - 1, &cand);
            self.levels[0] = cand;
            found
        } else {
            let mut cand = std::mem::take(&mut self.bufs[0]);
            cand.clear();
            cand.extend(
                self.dag.out_neighbors(root).iter().copied().filter(|&v| valid[v as usize]),
            );
            let found = self.recurse(self.k - 1, &cand);
            self.bufs[0] = cand;
            found
        };
        if found {
            Some(Clique::new(&self.stack))
        } else {
            None
        }
    }

    fn recurse(&mut self, l: usize, cand: &[NodeId]) -> bool {
        if cand.len() < l {
            return false;
        }
        if l == 1 {
            self.stack.push(cand[0]);
            return true;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        let mut found = false;
        for &v in cand {
            // cand is already valid-filtered, so the intersection is too.
            intersect_sorted(cand, self.dag.out_neighbors(v), &mut sub);
            if sub.len() >= l - 1 {
                self.stack.push(v);
                if self.recurse(l - 1, &sub) {
                    found = true;
                    break;
                }
                self.stack.pop();
            }
        }
        self.bufs[depth] = sub;
        found
    }

    /// Bitset-kernel mirror of [`FirstFinder::recurse`]: local ids ascend
    /// with global ids, so the first clique found is the same one.
    fn recurse_dense(&mut self, l: usize, cand: &[u64]) -> bool {
        if kernel::count_ones(cand) < l {
            return false;
        }
        if l == 1 {
            let first = kernel::ones(cand).next().expect("count checked above");
            self.stack.push(self.dense.globals[first]);
            return true;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.levels[depth]);
        let mut found = false;
        for i in kernel::ones(cand) {
            kernel::and_into(&mut sub, cand, self.dense.row(i));
            if kernel::count_ones(&sub) >= l - 1 {
                self.stack.push(self.dense.globals[i]);
                if self.recurse_dense(l - 1, &sub) {
                    found = true;
                    break;
                }
                self.stack.pop();
            }
        }
        self.levels[depth] = sub;
        found
    }
}

/// `FindMin` of Algorithm 3: finds the clique of minimum clique score
/// rooted at a node.
///
/// With `prune = true`, applies the paper's score-driven pruning rule
/// (Lines 19-20 / 27-28): a branch is abandoned as soon as the partial score
/// plus the next node's score reaches the best complete score found so far.
/// This is lossless — every node of a real k-clique has `s_n >= 1`, so any
/// completion through the pruned branch would score at least as much as the
/// incumbent, and ties keep the first-encountered clique either way.
/// `prune = false` gives the exhaustive variant (the paper's competitor L).
pub struct MinScoreFinder<'a> {
    dag: &'a Dag,
    scores: &'a [u64],
    k: usize,
    prune: bool,
    mode: KernelMode,
    stack: Vec<NodeId>,
    bufs: Vec<Vec<NodeId>>,
    levels: Vec<Vec<u64>>,
    dense: DenseIndex,
    best: Option<ScoredClique>,
}

impl<'a> MinScoreFinder<'a> {
    /// Creates a finder for k-cliques with the given per-node scores.
    pub fn new(dag: &'a Dag, scores: &'a [u64], k: usize, prune: bool) -> Self {
        Self::with_kernel(dag, scores, k, prune, KernelMode::default())
    }

    /// [`MinScoreFinder::new`] with an explicit intersection kernel; every
    /// mode finds the identical clique and score (pruning decisions depend
    /// only on the incumbent best, which evolves identically because both
    /// kernels visit candidates in ascending id).
    pub fn with_kernel(
        dag: &'a Dag,
        scores: &'a [u64],
        k: usize,
        prune: bool,
        mode: KernelMode,
    ) -> Self {
        assert!(k >= 2, "MinScoreFinder requires k >= 2");
        assert_eq!(scores.len(), dag.num_nodes(), "one score per node required");
        MinScoreFinder {
            dag,
            scores,
            k,
            prune,
            mode,
            stack: Vec::with_capacity(k),
            bufs: vec![Vec::new(); k],
            levels: vec![Vec::new(); k],
            dense: DenseIndex::default(),
            best: None,
        }
    }

    /// Finds the minimum-score k-clique rooted at `root` among `valid`
    /// nodes. Deterministic: among equal-score cliques the first in the
    /// ascending-id recursion order wins (the tie rule the paper's
    /// implementation adopts for efficiency).
    pub fn find(&mut self, root: NodeId, valid: &[bool]) -> Option<ScoredClique> {
        if !valid[root as usize] {
            return None;
        }
        self.best = None;
        self.stack.clear();
        self.stack.push(root);
        if self.mode.dense_for(self.k, self.dag.out_degree(root)) {
            let d = self.dense.build_filtered(self.dag, root, valid);
            let mut cand = std::mem::take(&mut self.levels[0]);
            kernel::fill_full(&mut cand, d);
            self.recurse_dense(self.k - 1, &cand, self.scores[root as usize]);
            self.levels[0] = cand;
        } else {
            let mut cand = std::mem::take(&mut self.bufs[0]);
            cand.clear();
            cand.extend(
                self.dag.out_neighbors(root).iter().copied().filter(|&v| valid[v as usize]),
            );
            self.recurse(self.k - 1, &cand, self.scores[root as usize]);
            self.bufs[0] = cand;
        }
        self.best.take()
    }

    fn recurse(&mut self, l: usize, cand: &[NodeId], cur_sum: u64) {
        if cand.len() < l {
            return;
        }
        if l == 1 {
            for &v in cand {
                let total = cur_sum + self.scores[v as usize];
                if self.best.is_none_or(|b| total < b.score) {
                    self.stack.push(v);
                    self.best =
                        Some(ScoredClique { clique: Clique::new(&self.stack), score: total });
                    self.stack.pop();
                }
            }
            return;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        for &v in cand {
            let s = cur_sum + self.scores[v as usize];
            if self.prune {
                if let Some(best) = self.best {
                    if s >= best.score {
                        continue; // score-driven pruning
                    }
                }
            }
            intersect_sorted(cand, self.dag.out_neighbors(v), &mut sub);
            if sub.len() >= l - 1 {
                self.stack.push(v);
                self.recurse(l - 1, &sub, s);
                self.stack.pop();
            }
        }
        self.bufs[depth] = sub;
    }

    /// Bitset-kernel mirror of [`MinScoreFinder::recurse`].
    fn recurse_dense(&mut self, l: usize, cand: &[u64], cur_sum: u64) {
        if kernel::count_ones(cand) < l {
            return;
        }
        if l == 1 {
            for i in kernel::ones(cand) {
                let total = cur_sum + self.scores[self.dense.globals[i] as usize];
                if self.best.is_none_or(|b| total < b.score) {
                    self.stack.push(self.dense.globals[i]);
                    self.best =
                        Some(ScoredClique { clique: Clique::new(&self.stack), score: total });
                    self.stack.pop();
                }
            }
            return;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.levels[depth]);
        for i in kernel::ones(cand) {
            let v = self.dense.globals[i];
            let s = cur_sum + self.scores[v as usize];
            if self.prune {
                if let Some(best) = self.best {
                    if s >= best.score {
                        continue; // score-driven pruning
                    }
                }
            }
            kernel::and_into(&mut sub, cand, self.dense.row(i));
            if kernel::count_ones(&sub) >= l - 1 {
                self.stack.push(v);
                self.recurse_dense(l - 1, &sub, s);
                self.stack.pop();
            }
        }
        self.levels[depth] = sub;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::node_scores;
    use crate::list::for_each_kclique_rooted;
    use dkc_graph::{CsrGraph, NodeOrder, OrderingKind};

    fn paper_graph() -> CsrGraph {
        CsrGraph::from_edges(
            9,
            vec![
                (0, 2),
                (0, 5),
                (2, 5),
                (2, 4),
                (4, 5),
                (4, 7),
                (5, 7),
                (4, 6),
                (6, 7),
                (6, 8),
                (7, 8),
                (3, 6),
                (3, 8),
                (1, 3),
                (1, 8),
            ],
        )
        .unwrap()
    }

    fn dag(g: &CsrGraph) -> Dag {
        Dag::from_graph(g, NodeOrder::compute(g, OrderingKind::Identity))
    }

    #[test]
    fn first_finder_follows_example2_structure() {
        // Example 2 processes v6 (id 5) under the identity order and finds a
        // 3-clique rooted at it. The paper's trace picks (v6, v5, v3); the
        // exact pick depends on FindOne's unspecified iteration order, so we
        // assert the invariants: the result is a 3-clique of G containing
        // the root, drawn from the root's out-neighbourhood.
        let g = paper_graph();
        let d = dag(&g);
        let mut f = FirstFinder::new(&d, 3);
        let valid = vec![true; 9];
        let c = f.find(5, &valid).expect("v6 roots a 3-clique");
        assert!(c.contains(5));
        for (i, &a) in c.as_slice().iter().enumerate() {
            for &b in &c.as_slice()[i + 1..] {
                assert!(g.has_edge(a, b), "{a}-{b} missing");
            }
        }
        // Remove the found clique; a further clique must exist rooted at v9
        // (id 8) because C5/C6/C7 all live in the untouched region.
        let mut valid = valid;
        for u in c.iter() {
            valid[u as usize] = false;
        }
        let c2 = f.find(8, &valid).expect("v9 roots a clique in the residual graph");
        assert!(c2.contains(8));
        assert!(c2.is_disjoint(&c));
        for (i, &a) in c2.as_slice().iter().enumerate() {
            for &b in &c2.as_slice()[i + 1..] {
                assert!(g.has_edge(a, b), "{a}-{b} missing");
            }
        }
    }

    #[test]
    fn first_finder_kernels_agree_under_churned_validity() {
        let g = paper_graph();
        let d = dag(&g);
        let mut slice = FirstFinder::with_kernel(&d, 3, KernelMode::Slice);
        let mut dense = FirstFinder::with_kernel(&d, 3, KernelMode::Bitset);
        // Walk every validity pattern derived from a small counter.
        for pattern in 0..512u32 {
            let valid: Vec<bool> = (0..9).map(|i| pattern & (1 << i) != 0).collect();
            for root in 0..9 {
                assert_eq!(
                    slice.find(root, &valid),
                    dense.find(root, &valid),
                    "root={root} pattern={pattern:b}"
                );
            }
        }
    }

    #[test]
    fn first_finder_respects_validity() {
        let g = paper_graph();
        let d = dag(&g);
        let mut f = FirstFinder::new(&d, 3);
        let mut valid = vec![true; 9];
        valid[5] = false;
        assert!(f.find(5, &valid).is_none(), "invalid root yields nothing");
        valid[5] = true;
        valid[2] = false;
        valid[4] = false;
        // v6's only out-cliques used v3/v5; with both gone nothing remains.
        assert!(f.find(5, &valid).is_none());
    }

    #[test]
    fn first_finder_returns_none_without_cliques() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = dag(&g);
        let mut f = FirstFinder::new(&d, 3);
        let valid = vec![true; 4];
        for u in 0..4 {
            assert!(f.find(u, &valid).is_none());
        }
    }

    #[test]
    fn min_finder_picks_minimum_score_clique() {
        let g = paper_graph();
        let d = dag(&g);
        let scores = node_scores(&d, 3);
        // Root v9 (id 8) has out-cliques {6,7,8} (C5), {3,6,8} (C6), {1,3,8} (C7).
        // Scores: v7=2 wait — verify through exhaustive listing instead.
        for prune in [false, true] {
            let mut f = MinScoreFinder::new(&d, &scores, 3, prune);
            let valid = vec![true; 9];
            let got = f.find(8, &valid).expect("v9 roots cliques");
            // Exhaustive check.
            let mut best: Option<(u64, Vec<NodeId>)> = None;
            for_each_kclique_rooted(&d, 8, 3, |nodes| {
                let s: u64 = nodes.iter().map(|&v| scores[v as usize]).sum();
                if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
                    let mut v = nodes.to_vec();
                    v.sort_unstable();
                    best = Some((s, v));
                }
            });
            let (bs, bc) = best.unwrap();
            assert_eq!(got.score, bs, "prune={prune}");
            assert_eq!(got.clique.as_slice(), bc.as_slice(), "prune={prune}");
        }
    }

    #[test]
    fn min_finder_kernels_agree_under_churned_validity() {
        let g = paper_graph();
        let d = dag(&g);
        let scores = node_scores(&d, 3);
        for prune in [false, true] {
            let mut slice = MinScoreFinder::with_kernel(&d, &scores, 3, prune, KernelMode::Slice);
            let mut dense = MinScoreFinder::with_kernel(&d, &scores, 3, prune, KernelMode::Bitset);
            for pattern in 0..512u32 {
                let valid: Vec<bool> = (0..9).map(|i| pattern & (1 << i) != 0).collect();
                for root in 0..9 {
                    assert_eq!(
                        slice.find(root, &valid),
                        dense.find(root, &valid),
                        "prune={prune} root={root} pattern={pattern:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_and_exhaustive_agree_everywhere() {
        let g = paper_graph();
        let d = dag(&g);
        let scores = node_scores(&d, 3);
        let valid = vec![true; 9];
        let mut lp = MinScoreFinder::new(&d, &scores, 3, true);
        let mut l = MinScoreFinder::new(&d, &scores, 3, false);
        for u in 0..9 {
            assert_eq!(lp.find(u, &valid), l.find(u, &valid), "root {u}");
        }
    }

    #[test]
    fn min_finder_score_includes_root() {
        let g = paper_graph();
        let d = dag(&g);
        let scores = node_scores(&d, 3);
        let mut f = MinScoreFinder::new(&d, &scores, 3, true);
        let valid = vec![true; 9];
        let got = f.find(5, &valid).unwrap();
        assert_eq!(got.score, got.clique.score(&scores));
        assert!(got.clique.contains(5), "root must be a member");
    }

    #[test]
    fn finders_reject_small_k() {
        let g = paper_graph();
        let d = dag(&g);
        let scores = vec![0u64; 9];
        assert!(std::panic::catch_unwind(|| FirstFinder::new(&d, 1)).is_err());
        assert!(std::panic::catch_unwind(|| MinScoreFinder::new(&d, &scores, 1, true)).is_err());
    }
}
