//! A minimal fixed-width bitset used by the subset clique enumerator.

/// Dense bitset over `0..len` with 64-bit words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    pub(crate) fn new(len: usize) -> Self {
        Bitset { words: vec![0; len.div_ceil(64)], len }
    }

    /// All bits in `0..len` set.
    pub(crate) fn full(len: usize) -> Self {
        let mut b = Bitset::new(len);
        for i in 0..b.words.len() {
            b.words[i] = u64::MAX;
        }
        // Clear the tail beyond `len`.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = b.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        b
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self = a & b`, then clears every bit `<= pivot` (used to enforce
    /// increasing-id clique extension).
    pub(crate) fn assign_and_above(&mut self, a: &Bitset, b: &Bitset, pivot: usize) {
        debug_assert_eq!(a.len, b.len);
        self.len = a.len;
        self.words.resize(a.words.len(), 0);
        for (o, (&x, &y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *o = x & y;
        }
        // Zero bits 0..=pivot.
        let word = pivot / 64;
        let zero_upto = word.min(self.words.len());
        for w in &mut self.words[..zero_upto] {
            *w = 0;
        }
        if word < self.words.len() {
            let keep_from = pivot % 64 + 1;
            if keep_from >= 64 {
                self.words[word] = 0;
            } else {
                self.words[word] &= !((1u64 << keep_from) - 1);
            }
        }
    }

    /// Iterates set bit positions ascending.
    pub(crate) fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_count() {
        let mut b = Bitset::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.test(0) && b.test(64) && b.test(129));
        assert!(!b.test(1) && !b.test(128));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitset::full(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.test(69));
        let b = Bitset::full(64);
        assert_eq!(b.count_ones(), 64);
        let b = Bitset::full(0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn and_above_masks_correctly() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.set(i);
            }
            if i % 3 == 0 {
                b.set(i);
            }
        }
        let mut out = Bitset::new(100);
        out.assign_and_above(&a, &b, 30);
        // multiples of 6 strictly above 30: 36, 42, ..., 96.
        let ones: Vec<usize> = out.iter_ones().collect();
        assert_eq!(ones, vec![36, 42, 48, 54, 60, 66, 72, 78, 84, 90, 96]);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitset::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let v: Vec<usize> = b.iter_ones().collect();
        assert_eq!(v, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn and_above_pivot_edge_cases() {
        let a = Bitset::full(128);
        let b = Bitset::full(128);
        let mut out = Bitset::new(128);
        out.assign_and_above(&a, &b, 63);
        assert_eq!(out.iter_ones().next(), Some(64));
        out.assign_and_above(&a, &b, 127);
        assert_eq!(out.count_ones(), 0);
        out.assign_and_above(&a, &b, 0);
        assert_eq!(out.count_ones(), 127);
    }
}
