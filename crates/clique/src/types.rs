use dkc_graph::NodeId;

/// Maximum supported clique size. The paper evaluates `k` in `3..=6`; 16
/// leaves generous headroom while keeping [`Clique`] a small, copyable,
/// allocation-free value (72 bytes).
pub const MAX_K: usize = 16;

/// A clique as an inline sorted array of node ids.
///
/// Storing nodes inline (instead of a `Vec`) keeps hot solver loops free of
/// heap traffic: cliques are pushed onto binary heaps, hashed, and compared
/// millions of times. Nodes are kept sorted ascending, and unused slots are
/// padded with `NodeId::MAX` so that derived `Eq`/`Ord`/`Hash` are
/// well-defined.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clique {
    len: u8,
    nodes: [NodeId; MAX_K],
}

impl Clique {
    /// Builds a clique from a node slice. Nodes are sorted internally.
    ///
    /// # Panics
    /// Panics if `nodes.len() > MAX_K` or if the slice contains duplicates.
    pub fn new(nodes: &[NodeId]) -> Self {
        assert!(nodes.len() <= MAX_K, "clique size {} exceeds MAX_K={MAX_K}", nodes.len());
        let mut arr = [NodeId::MAX; MAX_K];
        arr[..nodes.len()].copy_from_slice(nodes);
        arr[..nodes.len()].sort_unstable();
        for w in arr[..nodes.len()].windows(2) {
            assert!(w[0] != w[1], "duplicate node {} in clique", w[0]);
        }
        Clique { len: nodes.len() as u8, nodes: arr }
    }

    /// Builds a clique from a slice that is already sorted ascending and
    /// duplicate-free — the invariant held by [`CliqueStore`] rows — skipping
    /// the sort that [`Clique::new`] performs. The invariant is checked in
    /// debug builds only.
    ///
    /// [`CliqueStore`]: crate::CliqueStore
    ///
    /// # Panics
    /// Panics if `nodes.len() > MAX_K`.
    #[inline]
    pub fn from_sorted(nodes: &[NodeId]) -> Self {
        assert!(nodes.len() <= MAX_K, "clique size {} exceeds MAX_K={MAX_K}", nodes.len());
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "from_sorted input not strictly ascending: {nodes:?}"
        );
        let mut arr = [NodeId::MAX; MAX_K];
        arr[..nodes.len()].copy_from_slice(nodes);
        Clique { len: nodes.len() as u8, nodes: arr }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty clique.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sorted member slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes[..self.len as usize]
    }

    /// Iterates the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.as_slice().iter().copied()
    }

    /// Membership test, `O(log k)`.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        self.as_slice().binary_search(&u).is_ok()
    }

    /// True when `self` and `other` share no node (Definition 3's disjointness).
    pub fn is_disjoint(&self, other: &Clique) -> bool {
        // Sorted-merge scan; cliques are tiny so this beats hashing.
        let (a, b) = (self.as_slice(), other.as_slice());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Clique score `s_c(C) = Σ_{u ∈ C} s_n(u)` (Definition 6).
    pub fn score(&self, node_scores: &[u64]) -> u64 {
        self.iter().map(|u| node_scores[u as usize]).sum()
    }
}

impl std::fmt::Debug for Clique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Clique{:?}", self.as_slice())
    }
}

impl<'a> IntoIterator for &'a Clique {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_members() {
        let c = Clique::new(&[5, 1, 3]);
        assert_eq!(c.as_slice(), &[1, 3, 5]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn from_sorted_matches_new_on_sorted_input() {
        assert_eq!(Clique::from_sorted(&[1, 3, 5]), Clique::new(&[5, 1, 3]));
        assert_eq!(Clique::from_sorted(&[]), Clique::new(&[]));
    }

    #[test]
    fn equality_ignores_input_order() {
        assert_eq!(Clique::new(&[2, 0, 1]), Clique::new(&[0, 1, 2]));
        assert_ne!(Clique::new(&[0, 1, 2]), Clique::new(&[0, 1, 3]));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        let _ = Clique::new(&[1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_K")]
    fn oversized_rejected() {
        let nodes: Vec<NodeId> = (0..MAX_K as NodeId + 1).collect();
        let _ = Clique::new(&nodes);
    }

    #[test]
    fn contains_and_disjoint() {
        let a = Clique::new(&[0, 2, 4]);
        let b = Clique::new(&[1, 3, 5]);
        let c = Clique::new(&[4, 6, 8]);
        assert!(a.contains(2));
        assert!(!a.contains(3));
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        assert!(!a.is_disjoint(&c)); // share node 4
        assert!(!c.is_disjoint(&a));
    }

    #[test]
    fn score_sums_member_scores() {
        // Example 3 of the paper: clique C3 = (v5, v6, v8) has node scores
        // 3, 3 and 3, giving a clique score of 9.
        let scores = vec![0, 0, 0, 0, 3, 3, 0, 3, 0];
        let c3 = Clique::new(&[4, 5, 7]); // v5, v6, v8 as 0-based ids
        assert_eq!(c3.score(&scores), 9);
    }

    #[test]
    fn ordering_is_by_length_then_lexicographic() {
        let small = Clique::new(&[0, 9]);
        let big = Clique::new(&[0, 1, 2]);
        assert!(small < big, "shorter cliques order first");
        let a = Clique::new(&[0, 1, 5]);
        let b = Clique::new(&[0, 2, 3]);
        assert!(a < b);
    }

    #[test]
    fn debug_format_shows_members() {
        let c = Clique::new(&[3, 1]);
        assert_eq!(format!("{c:?}"), "Clique[1, 3]");
    }

    #[test]
    fn iter_roundtrip() {
        let c = Clique::new(&[7, 2, 9]);
        let v: Vec<NodeId> = (&c).into_iter().collect();
        assert_eq!(v, vec![2, 7, 9]);
    }
}
