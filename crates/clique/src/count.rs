use crate::kernel::{self, DenseIndex, KernelMode};
use crate::list::intersect_sorted;
use dkc_graph::{Dag, NodeId};
use dkc_par::{par_reduce, ParConfig};

/// Counts all k-cliques of the graph without materialising them.
pub fn count_kcliques(dag: &Dag, k: usize) -> u64 {
    count_kcliques_parallel(dag, k, ParConfig::sequential())
}

/// Computes per-node k-clique counts — the *node scores* `s_n(u)` of
/// Definition 5 — in a single enumeration pass and `O(n + m)` memory.
///
/// This is Line 2 of Algorithm 3: scores are accumulated during the kClist
/// recursion; no clique is ever stored. At the innermost level, every
/// candidate completes a clique, so the counts are aggregated wholesale
/// (`O(|cand| + k)` per parent instead of `O(k)` per clique).
pub fn node_scores(dag: &Dag, k: usize) -> Vec<u64> {
    node_scores_parallel(dag, k, ParConfig::sequential())
}

/// Parallel [`node_scores`] on the [`dkc_par`] executor: root nodes are
/// distributed over workers in chunks; per-worker score arrays are summed
/// element-wise at the end. Bit-identical to the sequential pass for any
/// thread count (`u64` addition commutes).
pub fn node_scores_parallel(dag: &Dag, k: usize, par: ParConfig) -> Vec<u64> {
    node_scores_kernel(dag, k, par, KernelMode::default())
}

/// [`node_scores_parallel`] with an explicit intersection kernel; every
/// mode produces identical scores.
pub fn node_scores_kernel(dag: &Dag, k: usize, par: ParConfig, mode: KernelMode) -> Vec<u64> {
    let n = dag.num_nodes();
    par_reduce(
        par,
        n,
        || CountCtx::with_kernel(dag, k, mode),
        || vec![0u64; n],
        |ctx, scores, range| {
            for u in range {
                ctx.run_root(u as NodeId, Some(scores));
            }
        },
        |merged, local| {
            for (m, l) in merged.iter_mut().zip(local) {
                *m += l;
            }
        },
    )
}

/// Parallel [`count_kcliques`] on the [`dkc_par`] executor; per-worker
/// totals are summed, so the count is thread-count invariant.
pub fn count_kcliques_parallel(dag: &Dag, k: usize, par: ParConfig) -> u64 {
    count_kcliques_kernel(dag, k, par, KernelMode::default())
}

/// [`count_kcliques_parallel`] with an explicit intersection kernel; every
/// mode produces the identical count.
pub fn count_kcliques_kernel(dag: &Dag, k: usize, par: ParConfig, mode: KernelMode) -> u64 {
    par_reduce(
        par,
        dag.num_nodes(),
        || CountCtx::with_kernel(dag, k, mode),
        || 0u64,
        |ctx, total, range| {
            for u in range {
                *total += ctx.run_root(u as NodeId, None);
            }
        },
        |a, b| *a += b,
    )
}

/// Reusable recursion state for counting, optionally accumulating per-node
/// scores into a caller-provided array (kept outside the context so one
/// context can serve as per-worker scratch while the accumulator lives in
/// the executor's reduction slot). Holds both kernels' scratch;
/// [`KernelMode`] picks per root.
struct CountCtx<'a> {
    dag: &'a Dag,
    k: usize,
    mode: KernelMode,
    stack: Vec<NodeId>,
    bufs: Vec<Vec<NodeId>>,
    levels: Vec<Vec<u64>>,
    dense: DenseIndex,
}

impl<'a> CountCtx<'a> {
    fn with_kernel(dag: &'a Dag, k: usize, mode: KernelMode) -> Self {
        assert!(k >= 1, "k must be at least 1");
        CountCtx {
            dag,
            k,
            mode,
            stack: Vec::with_capacity(k),
            bufs: vec![Vec::new(); k.saturating_sub(1)],
            levels: vec![Vec::new(); k.saturating_sub(1)],
            dense: DenseIndex::default(),
        }
    }

    /// Counts (and scores, when `scores` is given) the k-cliques rooted at
    /// `u`; returns the count.
    fn run_root(&mut self, u: NodeId, mut scores: Option<&mut [u64]>) -> u64 {
        if self.k == 1 {
            if let Some(s) = scores.as_deref_mut() {
                s[u as usize] += 1;
            }
            return 1;
        }
        let d = self.dag.out_degree(u);
        if d < self.k - 1 {
            return 0;
        }
        if self.mode.dense_for(self.k, d) {
            return self.run_root_dense(u, scores);
        }
        self.stack.clear();
        self.stack.push(u);
        let mut first = std::mem::take(&mut self.bufs[0]);
        first.clear();
        first.extend_from_slice(self.dag.out_neighbors(u));
        let c = self.recurse(self.k - 1, &first, scores);
        self.bufs[0] = first;
        c
    }

    fn recurse(&mut self, l: usize, cand: &[NodeId], mut scores: Option<&mut [u64]>) -> u64 {
        if cand.len() < l {
            return 0;
        }
        if l == 1 {
            // Every candidate completes a clique with the current stack:
            // aggregate instead of touching counters once per clique.
            if let Some(scores) = scores.as_deref_mut() {
                for &v in cand {
                    scores[v as usize] += 1;
                }
                let found = cand.len() as u64;
                for &c in &self.stack {
                    scores[c as usize] += found;
                }
            }
            return cand.len() as u64;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        let mut total = 0u64;
        for &v in cand {
            intersect_sorted(cand, self.dag.out_neighbors(v), &mut sub);
            if sub.len() >= l - 1 {
                self.stack.push(v);
                total += self.recurse(l - 1, &sub, scores.as_deref_mut());
                self.stack.pop();
            }
        }
        self.bufs[depth] = sub;
        total
    }

    /// Bitset-kernel root: one matrix build, then word-AND recursion. The
    /// innermost aggregation mirrors the slice kernel (candidate popcount
    /// credited wholesale), so counts and scores are bit-identical.
    fn run_root_dense(&mut self, u: NodeId, scores: Option<&mut [u64]>) -> u64 {
        let d = self.dense.build(self.dag, u);
        self.stack.clear();
        self.stack.push(u);
        let mut first = std::mem::take(&mut self.levels[0]);
        kernel::fill_full(&mut first, d);
        let c = self.recurse_dense(self.k - 1, &first, scores);
        self.levels[0] = first;
        c
    }

    fn recurse_dense(&mut self, l: usize, cand: &[u64], mut scores: Option<&mut [u64]>) -> u64 {
        let cand_ones = kernel::count_ones(cand);
        if cand_ones < l {
            return 0;
        }
        if l == 1 {
            if let Some(scores) = scores.as_deref_mut() {
                for i in kernel::ones(cand) {
                    scores[self.dense.globals[i] as usize] += 1;
                }
                let found = cand_ones as u64;
                for &c in &self.stack {
                    scores[c as usize] += found;
                }
            }
            return cand_ones as u64;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.levels[depth]);
        let mut total = 0u64;
        for i in kernel::ones(cand) {
            kernel::and_into(&mut sub, cand, self.dense.row(i));
            if kernel::count_ones(&sub) >= l - 1 {
                self.stack.push(self.dense.globals[i]);
                total += self.recurse_dense(l - 1, &sub, scores.as_deref_mut());
                self.stack.pop();
            }
        }
        self.levels[depth] = sub;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::for_each_kclique;
    use dkc_graph::{CsrGraph, NodeOrder, OrderingKind};

    fn paper_graph() -> CsrGraph {
        CsrGraph::from_edges(
            9,
            vec![
                (0, 2),
                (0, 5),
                (2, 5),
                (2, 4),
                (4, 5),
                (4, 7),
                (5, 7),
                (4, 6),
                (6, 7),
                (6, 8),
                (7, 8),
                (3, 6),
                (3, 8),
                (1, 3),
                (1, 8),
            ],
        )
        .unwrap()
    }

    fn dag(g: &CsrGraph) -> Dag {
        Dag::from_graph(g, NodeOrder::compute(g, OrderingKind::Degeneracy))
    }

    #[test]
    fn counts_match_example1() {
        let g = paper_graph();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 7);
        assert_eq!(count_kcliques(&d, 1), 9);
        assert_eq!(count_kcliques(&d, 2), 15);
        assert_eq!(count_kcliques(&d, 4), 0); // no 4-clique in Fig. 2
    }

    #[test]
    fn node_scores_match_example3() {
        // Example 3: s_n(v6) = s_n(v5) = s_n(v8) = 3.
        let g = paper_graph();
        let d = dag(&g);
        let s = node_scores(&d, 3);
        assert_eq!(s[5], 3); // v6
        assert_eq!(s[4], 3); // v5
        assert_eq!(s[7], 3); // v8
                             // Total score = k * number of cliques.
        assert_eq!(s.iter().sum::<u64>(), 3 * 7);
    }

    #[test]
    fn scores_agree_with_explicit_enumeration() {
        let g = paper_graph();
        let d = dag(&g);
        for k in 1..=4 {
            let fast = node_scores(&d, k);
            let mut slow = vec![0u64; 9];
            for_each_kclique(&d, k, |nodes| {
                for &v in nodes {
                    slow[v as usize] += 1;
                }
            });
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn complete_graph_counts_are_binomials() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(8, edges).unwrap();
        let d = dag(&g);
        // C(8, k) cliques; every node participates in C(7, k-1).
        let binom = |n: u64, k: u64| -> u64 { (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1)) };
        for k in 1..=8usize {
            assert_eq!(count_kcliques(&d, k), binom(8, k as u64), "k={k}");
            let s = node_scores(&d, k);
            for (u, &score) in s.iter().enumerate() {
                assert_eq!(score, binom(7, k as u64 - 1), "k={k} u={u}");
            }
        }
    }

    #[test]
    fn kernel_modes_agree_on_counts_and_scores() {
        let g = paper_graph();
        let d = dag(&g);
        let par = ParConfig::sequential();
        for k in 1..=4 {
            let base_count = count_kcliques_kernel(&d, k, par, KernelMode::Slice);
            let base_scores = node_scores_kernel(&d, k, par, KernelMode::Slice);
            for mode in [KernelMode::Bitset, KernelMode::Adaptive] {
                assert_eq!(count_kcliques_kernel(&d, k, par, mode), base_count, "k={k} {mode}");
                assert_eq!(node_scores_kernel(&d, k, par, mode), base_scores, "k={k} {mode}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // Random-ish graph built deterministically. A small chunk forces
        // genuinely parallel execution despite the modest size.
        let mut edges = Vec::new();
        for i in 0..600u32 {
            edges.push((i % 200, (i * 7 + 3) % 200));
            edges.push((i % 200, (i * 13 + 11) % 200));
        }
        let g = CsrGraph::from_edges(200, edges).unwrap();
        let d = dag(&g);
        for threads in [2usize, 4, 8] {
            let par = ParConfig::new(threads).with_chunk(16);
            for k in 3..=5 {
                assert_eq!(
                    count_kcliques_parallel(&d, k, par),
                    count_kcliques(&d, k),
                    "count k={k} threads={threads}"
                );
                assert_eq!(
                    node_scores_parallel(&d, k, par),
                    node_scores(&d, k),
                    "scores k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = CsrGraph::empty();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 0);
        assert!(node_scores(&d, 3).is_empty());

        let g = CsrGraph::from_edges(2, vec![(0, 1)]).unwrap();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 0);
        assert_eq!(node_scores(&d, 3), vec![0, 0]);
    }
}
