use crate::list::intersect_sorted;
use dkc_graph::{Dag, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts all k-cliques of the graph without materialising them.
pub fn count_kcliques(dag: &Dag, k: usize) -> u64 {
    let mut total = 0u64;
    let mut counter = CountCtx::new(dag, k, None);
    for u in 0..dag.num_nodes() as NodeId {
        total += counter.run_root(u);
    }
    total
}

/// Computes per-node k-clique counts — the *node scores* `s_n(u)` of
/// Definition 5 — in a single enumeration pass and `O(n + m)` memory.
///
/// This is Line 2 of Algorithm 3: scores are accumulated during the kClist
/// recursion; no clique is ever stored. At the innermost level, every
/// candidate completes a clique, so the counts are aggregated wholesale
/// (`O(|cand| + k)` per parent instead of `O(k)` per clique).
pub fn node_scores(dag: &Dag, k: usize) -> Vec<u64> {
    let mut scores = vec![0u64; dag.num_nodes()];
    let mut counter = CountCtx::new(dag, k, Some(&mut scores));
    for u in 0..dag.num_nodes() as NodeId {
        counter.run_root(u);
    }
    scores
}

/// Parallel [`node_scores`]: root nodes are distributed over `threads`
/// workers via an atomic work counter; per-thread score arrays are summed at
/// the end. Deterministic regardless of scheduling (addition commutes).
pub fn node_scores_parallel(dag: &Dag, k: usize, threads: usize) -> Vec<u64> {
    let n = dag.num_nodes();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 1024 {
        return node_scores(dag, k);
    }
    let next = AtomicUsize::new(0);
    const CHUNK: usize = 256;
    let locals: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut scores = vec![0u64; n];
                    let mut counter = CountCtx::new(dag, k, Some(&mut scores));
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for u in start..(start + CHUNK).min(n) {
                            counter.run_root(u as NodeId);
                        }
                    }
                    drop(counter);
                    scores
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut merged = vec![0u64; n];
    for local in locals {
        for (m, l) in merged.iter_mut().zip(local) {
            *m += l;
        }
    }
    merged
}

/// Parallel [`count_kcliques`] using the same work-stealing scheme.
pub fn count_kcliques_parallel(dag: &Dag, k: usize, threads: usize) -> u64 {
    let n = dag.num_nodes();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 1024 {
        return count_kcliques(dag, k);
    }
    let next = AtomicUsize::new(0);
    const CHUNK: usize = 256;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut counter = CountCtx::new(dag, k, None);
                    let mut total = 0u64;
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for u in start..(start + CHUNK).min(n) {
                            total += counter.run_root(u as NodeId);
                        }
                    }
                    total
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    })
}

/// Shared recursion state for counting, optionally accumulating per-node
/// scores.
struct CountCtx<'a, 'b> {
    dag: &'a Dag,
    k: usize,
    stack: Vec<NodeId>,
    bufs: Vec<Vec<NodeId>>,
    scores: Option<&'b mut [u64]>,
}

impl<'a, 'b> CountCtx<'a, 'b> {
    fn new(dag: &'a Dag, k: usize, scores: Option<&'b mut [u64]>) -> Self {
        assert!(k >= 1, "k must be at least 1");
        CountCtx {
            dag,
            k,
            stack: Vec::with_capacity(k),
            bufs: vec![Vec::new(); k.saturating_sub(1)],
            scores,
        }
    }

    /// Counts (and scores) the k-cliques rooted at `u`; returns the count.
    fn run_root(&mut self, u: NodeId) -> u64 {
        if self.k == 1 {
            if let Some(s) = self.scores.as_deref_mut() {
                s[u as usize] += 1;
            }
            return 1;
        }
        if self.dag.out_degree(u) < self.k - 1 {
            return 0;
        }
        self.stack.clear();
        self.stack.push(u);
        let mut first = std::mem::take(&mut self.bufs[0]);
        first.clear();
        first.extend_from_slice(self.dag.out_neighbors(u));
        let c = self.recurse(self.k - 1, &first);
        self.bufs[0] = first;
        c
    }

    fn recurse(&mut self, l: usize, cand: &[NodeId]) -> u64 {
        if cand.len() < l {
            return 0;
        }
        if l == 1 {
            // Every candidate completes a clique with the current stack:
            // aggregate instead of touching counters once per clique.
            if let Some(scores) = self.scores.as_deref_mut() {
                for &v in cand {
                    scores[v as usize] += 1;
                }
                let found = cand.len() as u64;
                for &c in &self.stack {
                    scores[c as usize] += found;
                }
            }
            return cand.len() as u64;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        let mut total = 0u64;
        for &v in cand {
            intersect_sorted(cand, self.dag.out_neighbors(v), &mut sub);
            if sub.len() >= l - 1 {
                self.stack.push(v);
                total += self.recurse(l - 1, &sub);
                self.stack.pop();
            }
        }
        self.bufs[depth] = sub;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::for_each_kclique;
    use dkc_graph::{CsrGraph, NodeOrder, OrderingKind};

    fn paper_graph() -> CsrGraph {
        CsrGraph::from_edges(
            9,
            vec![
                (0, 2),
                (0, 5),
                (2, 5),
                (2, 4),
                (4, 5),
                (4, 7),
                (5, 7),
                (4, 6),
                (6, 7),
                (6, 8),
                (7, 8),
                (3, 6),
                (3, 8),
                (1, 3),
                (1, 8),
            ],
        )
        .unwrap()
    }

    fn dag(g: &CsrGraph) -> Dag {
        Dag::from_graph(g, NodeOrder::compute(g, OrderingKind::Degeneracy))
    }

    #[test]
    fn counts_match_example1() {
        let g = paper_graph();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 7);
        assert_eq!(count_kcliques(&d, 1), 9);
        assert_eq!(count_kcliques(&d, 2), 15);
        assert_eq!(count_kcliques(&d, 4), 0); // no 4-clique in Fig. 2
    }

    #[test]
    fn node_scores_match_example3() {
        // Example 3: s_n(v6) = s_n(v5) = s_n(v8) = 3.
        let g = paper_graph();
        let d = dag(&g);
        let s = node_scores(&d, 3);
        assert_eq!(s[5], 3); // v6
        assert_eq!(s[4], 3); // v5
        assert_eq!(s[7], 3); // v8
                             // Total score = k * number of cliques.
        assert_eq!(s.iter().sum::<u64>(), 3 * 7);
    }

    #[test]
    fn scores_agree_with_explicit_enumeration() {
        let g = paper_graph();
        let d = dag(&g);
        for k in 1..=4 {
            let fast = node_scores(&d, k);
            let mut slow = vec![0u64; 9];
            for_each_kclique(&d, k, |nodes| {
                for &v in nodes {
                    slow[v as usize] += 1;
                }
            });
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn complete_graph_counts_are_binomials() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(8, edges).unwrap();
        let d = dag(&g);
        // C(8, k) cliques; every node participates in C(7, k-1).
        let binom = |n: u64, k: u64| -> u64 { (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1)) };
        for k in 1..=8usize {
            assert_eq!(count_kcliques(&d, k), binom(8, k as u64), "k={k}");
            let s = node_scores(&d, k);
            for (u, &score) in s.iter().enumerate() {
                assert_eq!(score, binom(7, k as u64 - 1), "k={k} u={u}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // Random-ish graph built deterministically.
        let mut edges = Vec::new();
        for i in 0..600u32 {
            edges.push((i % 200, (i * 7 + 3) % 200));
            edges.push((i % 200, (i * 13 + 11) % 200));
        }
        let g = CsrGraph::from_edges(200, edges).unwrap();
        let d = dag(&g);
        for k in 3..=5 {
            assert_eq!(count_kcliques_parallel(&d, k, 4), count_kcliques(&d, k), "count k={k}");
            assert_eq!(node_scores_parallel(&d, k, 4), node_scores(&d, k), "scores k={k}");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = CsrGraph::empty();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 0);
        assert!(node_scores(&d, 3).is_empty());

        let g = CsrGraph::from_edges(2, vec![(0, 1)]).unwrap();
        let d = dag(&g);
        assert_eq!(count_kcliques(&d, 3), 0);
        assert_eq!(node_scores(&d, 3), vec![0, 0]);
    }
}
