//! Flat arena storage for fixed-`k` clique sets.
//!
//! [`CliqueStore`] packs a set of k-cliques into one `Vec<NodeId>` with
//! stride `k`: clique `i` occupies `data[i*k .. (i+1)*k]`, sorted ascending.
//! Compared to `Vec<Clique>` (72 bytes per clique regardless of `k`) the
//! arena costs `4k` bytes per clique — 6× smaller at `k = 3` — and iterating
//! it walks one contiguous allocation instead of striding over padding.
//!
//! The store preserves the canonical order of whatever produced it, so the
//! arena-backed collectors in this module are **bit-identical** to the legacy
//! `Vec<Clique>` collectors in [`crate::list`] for every kernel mode and
//! thread count (property-tested in `tests/proptest_clique_store.rs`).

use crate::kernel::KernelMode;
use crate::list::{for_each_kclique_kernel, for_each_kclique_while};
use crate::types::{Clique, MAX_K};
use dkc_graph::{Dag, NodeId};
use dkc_par::{par_for_each_root, par_try_collect, ParConfig, SharedBudget};

use crate::list::ListCtx;

/// A flat arena of k-cliques: one `Vec<NodeId>` with stride `k`.
///
/// Rows are sorted ascending and duplicate-free (the [`Clique`] invariant);
/// row order is whatever the producer pushed, so stores built by the
/// enumeration collectors carry the canonical enumeration order.
///
/// ```
/// use dkc_clique::CliqueStore;
///
/// let mut store = CliqueStore::new(3);
/// store.push(&[5, 1, 3]); // sorted on insert
/// store.push(&[0, 2, 4]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.get(0), &[1, 3, 5]);
/// assert_eq!(store.iter().collect::<Vec<_>>(), vec![&[1, 3, 5][..], &[0, 2, 4][..]]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CliqueStore {
    k: usize,
    data: Vec<NodeId>,
}

impl CliqueStore {
    /// Creates an empty store for cliques of exactly `k` members.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "CliqueStore k = {k} out of range 1..={MAX_K}");
        CliqueStore { k, data: Vec::new() }
    }

    /// [`CliqueStore::new`] with room for `cliques` rows.
    pub fn with_capacity(k: usize, cliques: usize) -> Self {
        let mut s = CliqueStore::new(k);
        s.data.reserve(cliques.saturating_mul(k));
        s
    }

    /// Wraps an existing flat member array (stride-`k` rows, each sorted
    /// ascending and duplicate-free).
    ///
    /// # Panics
    /// Panics when `k` is out of range or `data.len()` is not a multiple of
    /// `k`. Row invariants are checked in debug builds only.
    pub fn from_flat(k: usize, data: Vec<NodeId>) -> Self {
        assert!((1..=MAX_K).contains(&k), "CliqueStore k = {k} out of range 1..={MAX_K}");
        assert!(
            data.len().is_multiple_of(k),
            "flat length {} is not a multiple of k = {k}",
            data.len()
        );
        debug_assert!(
            data.chunks_exact(k).all(|row| row.windows(2).all(|w| w[0] < w[1])),
            "from_flat row not strictly ascending"
        );
        CliqueStore { k, data }
    }

    /// Copies a legacy `Vec<Clique>`-style slice into an arena.
    ///
    /// # Panics
    /// Panics when any clique's length differs from `k`.
    pub fn from_cliques(k: usize, cliques: &[Clique]) -> Self {
        let mut s = CliqueStore::with_capacity(k, cliques.len());
        for c in cliques {
            s.push_clique(c);
        }
        s
    }

    /// The fixed clique size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cliques stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.k
    }

    /// True when no cliques are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a clique. `nodes` need not be sorted: the members are copied
    /// to the arena tail and sorted in place, so the push performs no heap
    /// allocation beyond the arena's own amortised growth.
    ///
    /// # Panics
    /// Panics when `nodes.len() != k`; duplicate members are caught in debug
    /// builds only (enumeration can never produce them).
    #[inline]
    pub fn push(&mut self, nodes: &[NodeId]) {
        assert_eq!(nodes.len(), self.k, "clique size {} != k = {}", nodes.len(), self.k);
        let start = self.data.len();
        self.data.extend_from_slice(nodes);
        self.data[start..].sort_unstable();
        debug_assert!(
            self.data[start..].windows(2).all(|w| w[0] < w[1]),
            "duplicate member in pushed clique {nodes:?}"
        );
    }

    /// Appends an owned [`Clique`] (already sorted).
    ///
    /// # Panics
    /// Panics when `c.len() != k`.
    #[inline]
    pub fn push_clique(&mut self, c: &Clique) {
        assert_eq!(c.len(), self.k, "clique size {} != k = {}", c.len(), self.k);
        self.data.extend_from_slice(c.as_slice());
    }

    /// The members of clique `i`, sorted ascending.
    #[inline]
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Clique `i` as an owned [`Clique`] value.
    #[inline]
    pub fn clique(&self, i: usize) -> Clique {
        Clique::from_sorted(self.get(i))
    }

    /// Iterates member slices in row order.
    #[inline]
    pub fn iter(&self) -> std::slice::ChunksExact<'_, NodeId> {
        self.data.chunks_exact(self.k)
    }

    /// Iterates rows as owned [`Clique`] values (the compatibility bridge
    /// for call sites still written against `Vec<Clique>`).
    pub fn iter_cliques(&self) -> impl Iterator<Item = Clique> + '_ {
        self.iter().map(Clique::from_sorted)
    }

    /// The whole arena as one flat slice (stride `k`).
    #[inline]
    pub fn as_flat(&self) -> &[NodeId] {
        &self.data
    }

    /// Materialises the legacy representation.
    pub fn to_cliques(&self) -> Vec<Clique> {
        self.iter_cliques().collect()
    }

    /// Removes clique `i` by moving the last row into its place (mirrors
    /// `Vec::swap_remove`). Returns the removed clique.
    pub fn swap_remove(&mut self, i: usize) -> Clique {
        let removed = self.clique(i);
        let last = self.len() - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.k);
            head[i * self.k..(i + 1) * self.k].copy_from_slice(tail);
        }
        self.data.truncate(last * self.k);
        removed
    }

    /// Removes all cliques, keeping the arena allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Sorts rows into canonical ascending order (the [`Clique`] `Ord`,
    /// which for fixed `k` is lexicographic member order).
    pub fn sort_canonical(&mut self) {
        let k = self.k;
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.data[a * k..(a + 1) * k].cmp(&self.data[b * k..(b + 1) * k])
        });
        let mut sorted = Vec::with_capacity(self.data.len());
        for i in order {
            sorted.extend_from_slice(&self.data[i * k..(i + 1) * k]);
        }
        self.data = sorted;
    }

    /// Heap bytes held by the arena.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl std::fmt::Debug for CliqueStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CliqueStore(k={})", self.k)?;
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a CliqueStore {
    type Item = &'a [NodeId];
    type IntoIter = std::slice::ChunksExact<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Appends one clique (root-first recursion order) to a flat arena tail and
/// sorts it in place — the zero-allocation emission step shared by every
/// arena collector.
#[inline]
fn emit_flat(out: &mut Vec<NodeId>, nodes: &[NodeId]) {
    let start = out.len();
    out.extend_from_slice(nodes);
    out[start..].sort_unstable();
}

/// Arena-backed [`crate::collect_kcliques`]: identical clique sequence, flat
/// storage, zero per-clique allocations.
pub fn collect_kcliques_store(dag: &Dag, k: usize) -> CliqueStore {
    collect_kcliques_store_kernel(dag, k, KernelMode::default())
}

/// [`collect_kcliques_store`] with an explicit intersection kernel.
pub fn collect_kcliques_store_kernel(dag: &Dag, k: usize, mode: KernelMode) -> CliqueStore {
    let mut data = Vec::new();
    for_each_kclique_kernel(dag, k, mode, |nodes| emit_flat(&mut data, nodes));
    CliqueStore::from_flat(k, data)
}

/// Arena-backed [`crate::collect_kcliques_parallel`]: each worker emits
/// `k` sorted ids per clique into its chunk segment, and the executor
/// concatenates segments in ascending chunk order — since every clique
/// contributes exactly `k` elements, the concatenation of flat segments *is*
/// the sequential arena, bit for bit, for any thread count.
pub fn collect_kcliques_store_parallel(dag: &Dag, k: usize, par: ParConfig) -> CliqueStore {
    collect_kcliques_store_parallel_kernel(dag, k, par, KernelMode::default())
}

/// [`collect_kcliques_store_parallel`] with an explicit intersection kernel.
pub fn collect_kcliques_store_parallel_kernel(
    dag: &Dag,
    k: usize,
    par: ParConfig,
    mode: KernelMode,
) -> CliqueStore {
    let data = par_for_each_root(
        par,
        dag.num_nodes(),
        || ListCtx::with_kernel(dag, k, mode),
        |ctx, u, out: &mut Vec<NodeId>| {
            ctx.run_root(u as NodeId, &mut |nodes| {
                emit_flat(out, nodes);
                true
            });
        },
    );
    CliqueStore::from_flat(k, data)
}

/// Arena-backed [`crate::collect_kcliques_bounded`] (sequential reference).
pub fn collect_kcliques_store_bounded(
    dag: &Dag,
    k: usize,
    limit: usize,
) -> Result<CliqueStore, usize> {
    let mut data = Vec::new();
    let mut overflow = false;
    for_each_kclique_while(dag, k, |nodes| {
        if data.len() >= limit * k {
            overflow = true;
            return false;
        }
        emit_flat(&mut data, nodes);
        true
    });
    if overflow {
        Err(limit)
    } else {
        Ok(CliqueStore::from_flat(k, data))
    }
}

/// Arena-backed [`crate::collect_kcliques_bounded_par`]: the same
/// [`SharedBudget`] lossless-pruning contract (deterministic `Err`/`Ok`,
/// chunk-ordered output equal to the sequential arena) over flat segments.
pub fn collect_kcliques_store_bounded_par(
    dag: &Dag,
    k: usize,
    limit: usize,
    par: ParConfig,
    mode: KernelMode,
) -> Result<CliqueStore, usize> {
    let budget = SharedBudget::new(limit);
    let data = par_try_collect(
        par,
        dag.num_nodes(),
        || ListCtx::with_kernel(dag, k, mode),
        |ctx, range, out: &mut Vec<NodeId>| {
            for u in range {
                let mut over = false;
                ctx.run_root(u as NodeId, &mut |nodes| {
                    if !budget.charge(1) {
                        over = true;
                        return false;
                    }
                    emit_flat(out, nodes);
                    true
                });
                if over {
                    return Err(limit);
                }
            }
            Ok(())
        },
    )?;
    Ok(CliqueStore::from_flat(k, data))
}

/// Arena-backed [`crate::collect_kcliques_budgeted`]: `Some(limit)` runs the
/// shared-bound bounded collector, `None` the unbounded parallel one.
pub fn collect_kcliques_store_budgeted(
    dag: &Dag,
    k: usize,
    max_cliques: Option<usize>,
    par: ParConfig,
) -> Result<CliqueStore, usize> {
    match max_cliques {
        Some(limit) => {
            collect_kcliques_store_bounded_par(dag, k, limit, par, KernelMode::default())
        }
        None => Ok(collect_kcliques_store_parallel(dag, k, par)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::tests::{dag_of, paper_graph};
    use crate::list::{collect_kcliques, collect_kcliques_bounded, collect_kcliques_parallel};
    use dkc_graph::OrderingKind;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut s = CliqueStore::new(3);
        assert!(s.is_empty());
        s.push(&[9, 4, 6]);
        s.push(&[0, 1, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[4, 6, 9]);
        assert_eq!(s.clique(1), Clique::new(&[0, 1, 2]));
        assert_eq!(s.as_flat(), &[4, 6, 9, 0, 1, 2]);
        let rows: Vec<&[u32]> = s.iter().collect();
        assert_eq!(rows, vec![&[4, 6, 9][..], &[0, 1, 2][..]]);
    }

    #[test]
    fn from_cliques_and_back() {
        let cliques = vec![Clique::new(&[3, 1, 2]), Clique::new(&[7, 5, 6])];
        let s = CliqueStore::from_cliques(3, &cliques);
        assert_eq!(s.to_cliques(), cliques);
        assert_eq!(CliqueStore::from_flat(3, s.as_flat().to_vec()), s);
    }

    #[test]
    fn swap_remove_mirrors_vec_semantics() {
        let mut s = CliqueStore::new(2);
        let mut v = vec![Clique::new(&[0, 1]), Clique::new(&[2, 3]), Clique::new(&[4, 5])];
        for c in &v {
            s.push_clique(c);
        }
        assert_eq!(s.swap_remove(0), v.swap_remove(0));
        assert_eq!(s.to_cliques(), v);
        assert_eq!(s.swap_remove(1), v.swap_remove(1));
        assert_eq!(s.to_cliques(), v);
        assert_eq!(s.swap_remove(0), v.swap_remove(0));
        assert!(s.is_empty());
    }

    #[test]
    fn sort_canonical_matches_clique_sort() {
        let mut s = CliqueStore::new(3);
        for nodes in [[4, 5, 7], [0, 2, 5], [2, 4, 5], [1, 3, 8]] {
            s.push(&nodes);
        }
        let mut expected = s.to_cliques();
        expected.sort_unstable();
        s.sort_canonical();
        assert_eq!(s.to_cliques(), expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_k_rejected() {
        let _ = CliqueStore::new(0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_flat_rejected() {
        let _ = CliqueStore::from_flat(3, vec![1, 2]);
    }

    #[test]
    fn store_collectors_match_legacy_sequence() {
        let g = paper_graph();
        for kind in [OrderingKind::Identity, OrderingKind::Degeneracy] {
            let dag = dag_of(&g, kind);
            for k in 1..=4 {
                let legacy = collect_kcliques(&dag, k);
                assert_eq!(collect_kcliques_store(&dag, k).to_cliques(), legacy, "{kind:?} k={k}");
                for threads in [1usize, 2, 8] {
                    let par = ParConfig::new(threads).with_chunk(1);
                    assert_eq!(
                        collect_kcliques_store_parallel(&dag, k, par).to_cliques(),
                        collect_kcliques_parallel(&dag, k, par),
                        "{kind:?} k={k} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_store_matches_legacy_decisions() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        for limit in [0usize, 3, 6, 7, 1000] {
            let legacy = collect_kcliques_bounded(&dag, 3, limit);
            let store = collect_kcliques_store_bounded(&dag, 3, limit);
            assert_eq!(store.clone().map(|s| s.to_cliques()), legacy, "limit={limit}");
            for threads in [1usize, 2, 8] {
                let par = ParConfig::new(threads).with_chunk(1);
                let par_store =
                    collect_kcliques_store_bounded_par(&dag, 3, limit, par, KernelMode::default());
                assert_eq!(par_store, store, "limit={limit} threads={threads}");
            }
        }
    }

    #[test]
    fn budgeted_store_dispatches_like_legacy() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        let par = ParConfig::new(2);
        assert_eq!(collect_kcliques_store_budgeted(&dag, 3, None, par).unwrap().len(), 7);
        assert_eq!(collect_kcliques_store_budgeted(&dag, 3, Some(6), par), Err(6));
        assert_eq!(collect_kcliques_store_budgeted(&dag, 3, Some(7), par).unwrap().len(), 7);
    }
}
