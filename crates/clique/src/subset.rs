use crate::kernel;
use crate::types::Clique;
use dkc_graph::{DynGraph, NodeId};

/// Enumerates every k-clique of the subgraph induced on `nodes`.
///
/// This is the workhorse of the dynamic index (Algorithm 5): candidate
/// cliques for a solution clique `C` are exactly the k-cliques of the
/// induced subgraph on `B = C ∪ N_F(C)`. The subset is typically small
/// (a clique plus its free neighbours), so adjacency is densified into
/// bit rows (shared with the dense listing kernel) and cliques are extended
/// in increasing local id order, reporting each exactly once.
///
/// Duplicates in `nodes` are ignored. The callback receives *global* node
/// ids, sorted ascending, valid only for the duration of the call.
pub fn for_each_kclique_in_subset<F>(g: &DynGraph, nodes: &[NodeId], k: usize, mut cb: F)
where
    F: FnMut(&[NodeId]),
{
    assert!(k >= 1, "k must be at least 1");
    let mut local: Vec<NodeId> = nodes.to_vec();
    local.sort_unstable();
    local.dedup();
    let s = local.len();
    if s < k {
        return;
    }
    if k == 1 {
        for &u in &local {
            cb(&[u]);
        }
        return;
    }
    // Densify adjacency restricted to the subset: row i holds the local ids
    // adjacent to local node i, packed `stride` words per row.
    let stride = s.div_ceil(64);
    let mut rows = vec![0u64; s * stride];
    for (i, &gu) in local.iter().enumerate() {
        let row = &mut rows[i * stride..(i + 1) * stride];
        // Walk gu's (sorted) neighbour list against the (sorted) subset.
        let nbrs = g.neighbors(gu);
        let (mut a, mut b) = (0usize, 0usize);
        while a < nbrs.len() && b < s {
            match nbrs[a].cmp(&local[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    kernel::set_bit(row, b);
                    a += 1;
                    b += 1;
                }
            }
        }
    }
    let mut ctx = SubsetCtx {
        rows: &rows,
        stride,
        global: &local,
        k,
        stack: Vec::with_capacity(k),
        out: Vec::with_capacity(k),
        bufs: vec![Vec::new(); k],
    };
    let mut full = Vec::new();
    kernel::fill_full(&mut full, s);
    ctx.recurse(k, &full, &mut cb);
}

/// Collects the k-cliques of the induced subgraph into owned values.
pub fn collect_kcliques_in_subset(g: &DynGraph, nodes: &[NodeId], k: usize) -> Vec<Clique> {
    let mut out = Vec::new();
    for_each_kclique_in_subset(g, nodes, k, |c| out.push(Clique::new(c)));
    out
}

struct SubsetCtx<'a> {
    rows: &'a [u64],
    stride: usize,
    global: &'a [NodeId],
    k: usize,
    /// Chosen local ids, strictly increasing.
    stack: Vec<usize>,
    /// Scratch for the translated global ids.
    out: Vec<NodeId>,
    bufs: Vec<Vec<u64>>,
}

impl SubsetCtx<'_> {
    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    fn emit<F: FnMut(&[NodeId])>(&mut self, last: usize, cb: &mut F) {
        self.out.clear();
        self.out.extend(self.stack.iter().map(|&i| self.global[i]));
        self.out.push(self.global[last]);
        // Local ids are chosen in increasing order and `global` is sorted,
        // so `out` is already ascending.
        cb(&self.out);
    }

    fn recurse<F: FnMut(&[NodeId])>(&mut self, l: usize, cand: &[u64], cb: &mut F) {
        if l == 1 {
            for i in kernel::ones(cand) {
                self.emit(i, cb);
            }
            return;
        }
        if kernel::count_ones(cand) < l {
            return;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        for i in kernel::ones(cand) {
            kernel::and_above_into(&mut sub, cand, self.row(i), i);
            if kernel::count_ones(&sub) >= l - 1 {
                self.stack.push(i);
                self.recurse(l - 1, &sub, cb);
                self.stack.pop();
            }
        }
        self.bufs[depth] = sub;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn paper_dyn_graph() -> DynGraph {
        let mut g = DynGraph::new(9);
        for (a, b) in [
            (0, 2),
            (0, 5),
            (2, 5),
            (2, 4),
            (4, 5),
            (4, 7),
            (5, 7),
            (4, 6),
            (6, 7),
            (6, 8),
            (7, 8),
            (3, 6),
            (3, 8),
            (1, 3),
            (1, 8),
        ] {
            g.insert_edge(a, b);
        }
        g
    }

    fn subset_cliques(g: &DynGraph, nodes: &[NodeId], k: usize) -> BTreeSet<Vec<NodeId>> {
        let mut set = BTreeSet::new();
        for_each_kclique_in_subset(g, nodes, k, |c| {
            assert!(set.insert(c.to_vec()), "duplicate clique {c:?}");
        });
        set
    }

    #[test]
    fn full_subset_matches_known_cliques() {
        let g = paper_dyn_graph();
        let all: Vec<NodeId> = (0..9).collect();
        let cliques = subset_cliques(&g, &all, 3);
        assert_eq!(cliques.len(), 7);
        assert!(cliques.contains(&vec![0, 2, 5]));
        assert!(cliques.contains(&vec![1, 3, 8]));
    }

    #[test]
    fn restricted_subset_filters_cliques() {
        let g = paper_dyn_graph();
        // Only the neighbourhood of v5/v6/v8 region.
        let cliques = subset_cliques(&g, &[4, 5, 6, 7], 3);
        assert_eq!(cliques, [vec![4, 5, 7], vec![4, 6, 7]].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn duplicates_in_subset_are_harmless() {
        let g = paper_dyn_graph();
        let a = subset_cliques(&g, &[4, 5, 7, 4, 5], 3);
        let b = subset_cliques(&g, &[4, 5, 7], 3);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_subset_yields_nothing() {
        let g = paper_dyn_graph();
        assert!(subset_cliques(&g, &[4, 5], 3).is_empty());
        assert!(subset_cliques(&g, &[], 3).is_empty());
    }

    #[test]
    fn k1_and_k2_special_cases() {
        let g = paper_dyn_graph();
        assert_eq!(subset_cliques(&g, &[2, 4, 5], 1).len(), 3);
        // Edges within {2,4,5}: (2,4), (2,5), (4,5).
        assert_eq!(subset_cliques(&g, &[2, 4, 5], 2).len(), 3);
    }

    #[test]
    fn collect_returns_sorted_clique_values() {
        let g = paper_dyn_graph();
        let cliques = collect_kcliques_in_subset(&g, &(0..9).collect::<Vec<_>>(), 3);
        assert_eq!(cliques.len(), 7);
        for c in &cliques {
            assert_eq!(c.len(), 3);
            assert!(c.as_slice().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn large_subset_crossing_word_boundaries() {
        // A clique of size 5 placed at ids 60..65 inside a 130-node subset
        // exercises multi-word bit rows.
        let mut g = DynGraph::new(130);
        for a in 60..65u32 {
            for b in (a + 1)..65 {
                g.insert_edge(a, b);
            }
        }
        let all: Vec<NodeId> = (0..130).collect();
        let c5 = subset_cliques(&g, &all, 5);
        assert_eq!(c5.len(), 1);
        assert_eq!(c5.iter().next().unwrap(), &vec![60, 61, 62, 63, 64]);
        assert_eq!(subset_cliques(&g, &all, 4).len(), 5);
    }
}
