//! Kernel selection and the dense per-root neighbourhood bit matrix.
//!
//! Every recursion in this crate intersects candidate sets with
//! out-neighbour lists. Two interchangeable kernels implement that step:
//!
//! * **slice** — merge-scan of two sorted `NodeId` slices
//!   (`intersect_sorted`), `O(|cand| + deg⁺(v))` per step. Cheap to enter,
//!   no setup, the right call for sparse roots.
//! * **bitset** — densify the root's out-neighbourhood `N⁺(u)` once into a
//!   `d × d` bit matrix ([`DenseIndex`]) with a scatter pass over the
//!   global→local id map (`O(d + Σ deg⁺(v))`, no per-neighbour merge), then
//!   every intersection is a word-AND over `⌈d/64⌉` words. The matrix build
//!   replaces the *first* level of merge scans, so deeper recursions
//!   (`k ≥ 4`) and dense neighbourhoods (`d ≳ 64`) run on words instead of
//!   repeated merges — the Rossi-style dense-neighbourhood trick.
//!
//! Both kernels visit candidates in ascending node id (local ids are
//! assigned in sorted global order), so they emit the **same cliques in the
//! same order** and produce identical counters — property-tested in
//! `tests/proptests.rs` across forcing modes and thread counts. Selection
//! is per root via [`KernelMode`].

use dkc_graph::{Dag, NodeId};

/// Smallest out-degree for which [`KernelMode::Adaptive`] picks the bitset
/// kernel: below this, the matrix build amortises over too few word-ANDs
/// to beat plain merge scans. Measured on the FB stand-in (bench_listing),
/// the crossover sits well below one word — the scatter build costs about
/// as much as the first level of merge scans it replaces.
pub const DENSE_MIN_DEGREE: usize = 8;

/// Largest out-degree for which [`KernelMode::Adaptive`] picks the bitset
/// kernel: the matrix holds `d²` bits, so this caps per-worker scratch at
/// 2 MiB per root (degeneracy orders keep `d` far below this on real
/// graphs; degree orders can exceed it on hub nodes).
pub const DENSE_MAX_DEGREE: usize = 4096;

/// Which intersection kernel the clique recursions run.
///
/// `Adaptive` decides per root from the out-degree (see
/// [`DENSE_MIN_DEGREE`] / [`DENSE_MAX_DEGREE`]); the forcing variants exist
/// for property tests and benchmarks — results are bit-identical in every
/// mode, only the work per intersection changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelMode {
    /// Per-root choice: bitset for dense neighbourhoods, slice otherwise.
    #[default]
    Adaptive,
    /// Always merge-scan sorted slices (the pre-kernel behaviour).
    Slice,
    /// Always densify (unbounded `d² ` scratch — forcing/testing only).
    Bitset,
}

impl KernelMode {
    /// CLI/debug token.
    pub fn token(self) -> &'static str {
        match self {
            KernelMode::Adaptive => "adaptive",
            KernelMode::Slice => "slice",
            KernelMode::Bitset => "bitset",
        }
    }

    /// True when the bitset kernel should run a root with out-degree `d`
    /// at clique size `k`. `k <= 2` never densifies: those recursions do
    /// no intersections at all.
    #[inline]
    pub(crate) fn dense_for(self, k: usize, d: usize) -> bool {
        match self {
            KernelMode::Slice => false,
            KernelMode::Bitset => k >= 3 && d >= 2,
            KernelMode::Adaptive => k >= 3 && (DENSE_MIN_DEGREE..=DENSE_MAX_DEGREE).contains(&d),
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "adaptive" => Ok(KernelMode::Adaptive),
            "slice" => Ok(KernelMode::Slice),
            "bitset" | "dense" => Ok(KernelMode::Bitset),
            other => Err(format!("unknown kernel mode {other:?} (adaptive|slice|bitset)")),
        }
    }
}

/// The dense per-root index: `N⁺(root)` relabelled to local ids `0..d`
/// (ascending global id, so bit iteration preserves the slice kernel's
/// visit order) plus the induced `d × d` adjacency bit matrix
/// `rows[i] ∋ j ⇔ globals[j] ∈ N⁺(globals[i])`.
///
/// All buffers are reused across roots — building is allocation-free once
/// the high-water marks are reached, which is what makes per-root
/// densification viable inside the executor's per-worker scratch.
#[derive(Debug, Default)]
pub(crate) struct DenseIndex {
    /// Local id → global node id, sorted ascending.
    pub(crate) globals: Vec<NodeId>,
    /// Words per row.
    pub(crate) stride: usize,
    /// `d × stride` row-major bit matrix.
    rows: Vec<u64>,
    /// Global id → local id + 1 (0 = not in this root's neighbourhood).
    /// Stamped during build and cleared after, so it stays all-zero
    /// between roots without an `O(n)` reset.
    local_of: Vec<u32>,
}

impl DenseIndex {
    /// Builds the index for `root`; returns `d = |N⁺(root)|`.
    pub(crate) fn build(&mut self, dag: &Dag, root: NodeId) -> usize {
        self.globals.clear();
        self.globals.extend_from_slice(dag.out_neighbors(root));
        self.finish(dag)
    }

    /// Builds the index over the `valid`-filtered out-neighbourhood of
    /// `root` — the finders' working set, so invalid nodes never enter the
    /// matrix. Returns the filtered `d`.
    pub(crate) fn build_filtered(&mut self, dag: &Dag, root: NodeId, valid: &[bool]) -> usize {
        self.globals.clear();
        self.globals.extend(dag.out_neighbors(root).iter().copied().filter(|&v| valid[v as usize]));
        self.finish(dag)
    }

    fn finish(&mut self, dag: &Dag) -> usize {
        let d = self.globals.len();
        self.stride = d.div_ceil(64);
        self.rows.clear();
        self.rows.resize(d * self.stride, 0);
        if self.local_of.len() < dag.num_nodes() {
            self.local_of.resize(dag.num_nodes(), 0);
        }
        for (i, &v) in self.globals.iter().enumerate() {
            self.local_of[v as usize] = i as u32 + 1;
        }
        for i in 0..d {
            let v = self.globals[i];
            let row = &mut self.rows[i * self.stride..(i + 1) * self.stride];
            for &w in dag.out_neighbors(v) {
                let slot = self.local_of[w as usize];
                if slot != 0 {
                    let j = (slot - 1) as usize;
                    row[j / 64] |= 1u64 << (j % 64);
                }
            }
        }
        for &v in &self.globals {
            self.local_of[v as usize] = 0;
        }
        d
    }

    /// The adjacency row of local node `i`.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }
}

/// Fills `buf` with the all-ones candidate set over `0..len` (tail bits
/// beyond `len` cleared), resizing to the required word count.
pub(crate) fn fill_full(buf: &mut Vec<u64>, len: usize) {
    buf.clear();
    buf.resize(len.div_ceil(64), u64::MAX);
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = buf.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Sets bit `i` of `buf`.
#[inline]
pub(crate) fn set_bit(buf: &mut [u64], i: usize) {
    buf[i / 64] |= 1u64 << (i % 64);
}

/// `dst = a & b` (all three the same word count).
#[inline]
pub(crate) fn and_into(dst: &mut Vec<u64>, a: &[u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    dst.clear();
    dst.extend(a.iter().zip(b).map(|(&x, &y)| x & y));
}

/// `dst = a & b`, then clears every bit `<= pivot` — the increasing-id
/// extension step of the subset enumerator, whose rows are symmetric.
pub(crate) fn and_above_into(dst: &mut Vec<u64>, a: &[u64], b: &[u64], pivot: usize) {
    and_into(dst, a, b);
    let word = pivot / 64;
    let zero_upto = word.min(dst.len());
    for w in &mut dst[..zero_upto] {
        *w = 0;
    }
    if word < dst.len() {
        let keep_from = pivot % 64 + 1;
        if keep_from >= 64 {
            dst[word] = 0;
        } else {
            dst[word] &= !((1u64 << keep_from) - 1);
        }
    }
}

/// Number of set bits.
#[inline]
pub(crate) fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Iterates set bit positions in ascending order.
pub(crate) fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkc_graph::{CsrGraph, NodeOrder, OrderingKind};

    #[test]
    fn mode_parsing_and_display_roundtrip() {
        for mode in [KernelMode::Adaptive, KernelMode::Slice, KernelMode::Bitset] {
            assert_eq!(mode.token().parse::<KernelMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.token());
        }
        assert_eq!("dense".parse::<KernelMode>().unwrap(), KernelMode::Bitset);
        assert!("fast".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::Adaptive);
    }

    #[test]
    fn selection_heuristic_bounds() {
        assert!(!KernelMode::Slice.dense_for(5, 1000));
        assert!(KernelMode::Bitset.dense_for(3, 2));
        assert!(!KernelMode::Bitset.dense_for(2, 1000), "k=2 has no intersections");
        assert!(KernelMode::Adaptive.dense_for(3, DENSE_MIN_DEGREE));
        assert!(!KernelMode::Adaptive.dense_for(3, DENSE_MIN_DEGREE - 1));
        assert!(!KernelMode::Adaptive.dense_for(3, DENSE_MAX_DEGREE + 1));
    }

    #[test]
    fn dense_index_matches_arc_relation() {
        // K5 plus a pendant: every pair inside the root's neighbourhood of
        // the last-ranked node is an arc in exactly one direction.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        edges.push((0, 5));
        let g = CsrGraph::from_edges(6, edges).unwrap();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
        let mut idx = DenseIndex::default();
        // Find a root with out-degree >= 2 and check rows against has_arc.
        for root in 0..6u32 {
            let d = idx.build(&dag, root);
            assert_eq!(d, dag.out_degree(root));
            for i in 0..d {
                for j in 0..d {
                    let expect = dag.has_arc(idx.globals[i], idx.globals[j]);
                    let got = idx.row(i)[j / 64] & (1u64 << (j % 64)) != 0;
                    assert_eq!(got, expect, "root {root} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn build_reuses_and_clears_the_scatter_map() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
        let mut idx = DenseIndex::default();
        idx.build(&dag, 0);
        let first = idx.globals.clone();
        idx.build(&dag, 2);
        idx.build(&dag, 0);
        assert_eq!(idx.globals, first, "rebuild after reuse is identical");
        assert!(idx.local_of.iter().all(|&s| s == 0), "scatter map cleared between roots");
    }

    #[test]
    fn word_helpers_behave() {
        let mut buf = Vec::new();
        fill_full(&mut buf, 70);
        assert_eq!(count_ones(&buf), 70);
        assert_eq!(ones(&buf).last(), Some(69));
        fill_full(&mut buf, 64);
        assert_eq!(count_ones(&buf), 64);
        buf.clear();
        buf.resize(130usize.div_ceil(64), 0);
        assert_eq!(count_ones(&buf), 0);
        set_bit(&mut buf, 0);
        set_bit(&mut buf, 64);
        set_bit(&mut buf, 129);
        assert_eq!(ones(&buf).collect::<Vec<_>>(), vec![0, 64, 129]);

        let mut a = vec![0u64; 2];
        let mut b = vec![0u64; 2];
        for i in 0..100 {
            if i % 2 == 0 {
                set_bit(&mut a, i);
            }
            if i % 3 == 0 {
                set_bit(&mut b, i);
            }
        }
        let mut out = Vec::new();
        and_into(&mut out, &a, &b);
        assert!(ones(&out).all(|i| i % 6 == 0));
        and_above_into(&mut out, &a, &b, 30);
        assert_eq!(
            ones(&out).collect::<Vec<_>>(),
            vec![36, 42, 48, 54, 60, 66, 72, 78, 84, 90, 96]
        );
    }

    #[test]
    fn and_above_pivot_edge_cases() {
        let mut a = Vec::new();
        fill_full(&mut a, 128);
        let b = a.clone();
        let mut out = Vec::new();
        and_above_into(&mut out, &a, &b, 63);
        assert_eq!(ones(&out).next(), Some(64));
        and_above_into(&mut out, &a, &b, 127);
        assert_eq!(count_ones(&out), 0);
        and_above_into(&mut out, &a, &b, 0);
        assert_eq!(count_ones(&out), 127);
    }
}
