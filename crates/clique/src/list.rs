use crate::kernel::{self, DenseIndex, KernelMode};
use crate::types::Clique;
use dkc_graph::{Dag, NodeId};
use dkc_par::{par_for_each_root, par_try_collect, ParConfig, SharedBudget};

/// Enumerates every k-clique of the DAG-oriented graph exactly once.
///
/// Each clique is reported as a slice whose first element is the clique's
/// *root* — the member with the highest rank under the DAG's total order.
/// The remaining members appear in recursion order. The slice is only valid
/// for the duration of the callback.
///
/// `k = 1` reports every node, `k = 2` every edge; `k >= 3` is the paper's
/// regime. The recursion intersects sorted candidate lists (or, for dense
/// roots, word-ANDs the per-root bit matrix — see [`KernelMode`]), giving
/// the `O(k · m · (d/2)^(k-2))` bound of reference \[13\] when the order is
/// a degeneracy order.
pub fn for_each_kclique<F>(dag: &Dag, k: usize, cb: F)
where
    F: FnMut(&[NodeId]),
{
    for_each_kclique_kernel(dag, k, KernelMode::default(), cb)
}

/// [`for_each_kclique`] with an explicit intersection kernel. Every mode
/// reports the same cliques in the same order.
pub fn for_each_kclique_kernel<F>(dag: &Dag, k: usize, mode: KernelMode, mut cb: F)
where
    F: FnMut(&[NodeId]),
{
    let mut ctx = ListCtx::with_kernel(dag, k, mode);
    for u in 0..dag.num_nodes() as NodeId {
        ctx.run_root(u, &mut |nodes| {
            cb(nodes);
            true
        });
    }
}

/// Like [`for_each_kclique`] but the callback returns `false` to stop the
/// enumeration early — used by budgeted collectors so an over-limit clique
/// population is detected without materialising (or even visiting) it all.
pub fn for_each_kclique_while<F>(dag: &Dag, k: usize, mut cb: F)
where
    F: FnMut(&[NodeId]) -> bool,
{
    let mut ctx = ListCtx::new(dag, k);
    for u in 0..dag.num_nodes() as NodeId {
        if !ctx.run_root(u, &mut cb) {
            return;
        }
    }
}

/// Enumerates only the k-cliques rooted at `root` (those in which `root` is
/// the highest-ranked member).
pub fn for_each_kclique_rooted<F>(dag: &Dag, root: NodeId, k: usize, mut cb: F)
where
    F: FnMut(&[NodeId]),
{
    let mut ctx = ListCtx::new(dag, k);
    ctx.run_root(root, &mut |nodes| {
        cb(nodes);
        true
    });
}

/// Collects all k-cliques into owned [`Clique`] values (the storage-heavy
/// path used by Algorithm 2 / GC).
pub fn collect_kcliques(dag: &Dag, k: usize) -> Vec<Clique> {
    collect_kcliques_kernel(dag, k, KernelMode::default())
}

/// [`collect_kcliques`] with an explicit intersection kernel.
pub fn collect_kcliques_kernel(dag: &Dag, k: usize, mode: KernelMode) -> Vec<Clique> {
    let mut out = Vec::new();
    for_each_kclique_kernel(dag, k, mode, |nodes| out.push(Clique::new(nodes)));
    out
}

/// Parallel [`collect_kcliques`] on the [`dkc_par`] executor: roots fan out
/// over workers (each with its own reusable `ListCtx` recursion scratch)
/// and per-chunk clique segments are merged in ascending root order — the
/// output `Vec` is **bit-identical** to the sequential collector for any
/// thread count.
pub fn collect_kcliques_parallel(dag: &Dag, k: usize, par: ParConfig) -> Vec<Clique> {
    collect_kcliques_parallel_kernel(dag, k, par, KernelMode::default())
}

/// [`collect_kcliques_parallel`] with an explicit intersection kernel.
pub fn collect_kcliques_parallel_kernel(
    dag: &Dag,
    k: usize,
    par: ParConfig,
    mode: KernelMode,
) -> Vec<Clique> {
    par_for_each_root(
        par,
        dag.num_nodes(),
        || ListCtx::with_kernel(dag, k, mode),
        |ctx, u, out| {
            ctx.run_root(u as NodeId, &mut |nodes| {
                out.push(Clique::new(nodes));
                true
            });
        },
    )
}

/// Budget-aware collection used by the GC solver and clique-graph
/// construction: `Some(limit)` runs the shared-bound parallel bounded
/// collector ([`collect_kcliques_bounded_par`]), `None` the unbounded
/// parallel one. Both fan out over the executor with bit-identical output
/// and (for `Some`) a deterministic `Err`/`Ok` decision.
pub fn collect_kcliques_budgeted(
    dag: &Dag,
    k: usize,
    max_cliques: Option<usize>,
    par: ParConfig,
) -> Result<Vec<Clique>, usize> {
    match max_cliques {
        Some(limit) => collect_kcliques_bounded_par(dag, k, limit, par, KernelMode::default()),
        None => Ok(collect_kcliques_parallel(dag, k, par)),
    }
}

/// Budgeted [`collect_kcliques`]: aborts with `Err(limit)` as soon as more
/// than `limit` cliques exist, without materialising the excess — the
/// mechanism behind the harness's deterministic "OOM" markers. Sequential
/// reference implementation; [`collect_kcliques_bounded_par`] is the
/// parallel equivalent.
pub fn collect_kcliques_bounded(dag: &Dag, k: usize, limit: usize) -> Result<Vec<Clique>, usize> {
    let mut out = Vec::new();
    let mut overflow = false;
    for_each_kclique_while(dag, k, |nodes| {
        if out.len() >= limit {
            overflow = true;
            return false;
        }
        out.push(Clique::new(nodes));
        true
    });
    if overflow {
        Err(limit)
    } else {
        Ok(out)
    }
}

/// Parallel [`collect_kcliques_bounded`] on the [`dkc_par`] executor with a
/// [`SharedBudget`] as the cross-root pruning bound.
///
/// Every worker charges the shared bound once per clique it emits and
/// abandons its root as soon as the bound is exhausted. This is lossless
/// pruning in the sense of the executor's monotone-criterion contract: the
/// total k-clique population is a property of the input alone, so either
/// **every** schedule stays within budget (no worker ever observes
/// exhaustion, the chunk-ordered output equals the sequential collector
/// bit-for-bit) or **every** schedule eventually exceeds it (the run
/// returns `Err(limit)` and all partial output is discarded — the skipped
/// enumeration work could only have produced output that is already
/// excluded). The `Err`/`Ok` decision therefore matches
/// [`collect_kcliques_bounded`] for any thread count.
pub fn collect_kcliques_bounded_par(
    dag: &Dag,
    k: usize,
    limit: usize,
    par: ParConfig,
    mode: KernelMode,
) -> Result<Vec<Clique>, usize> {
    let budget = SharedBudget::new(limit);
    par_try_collect(
        par,
        dag.num_nodes(),
        || ListCtx::with_kernel(dag, k, mode),
        |ctx, range, out| {
            for u in range {
                let mut over = false;
                ctx.run_root(u as NodeId, &mut |nodes| {
                    if !budget.charge(1) {
                        over = true;
                        return false;
                    }
                    out.push(Clique::new(nodes));
                    true
                });
                if over {
                    return Err(limit);
                }
            }
            Ok(())
        },
    )
}

/// Reusable recursion state: one candidate buffer per depth plus the member
/// stack, so enumeration performs no per-clique allocation. Holds both
/// kernels' scratch; [`KernelMode`] picks per root.
pub(crate) struct ListCtx<'a> {
    dag: &'a Dag,
    k: usize,
    mode: KernelMode,
    stack: Vec<NodeId>,
    /// `bufs[d]` holds the slice-kernel candidate set at recursion depth `d`.
    bufs: Vec<Vec<NodeId>>,
    /// `levels[d]` holds the bitset-kernel candidate words at depth `d`.
    levels: Vec<Vec<u64>>,
    dense: DenseIndex,
}

impl<'a> ListCtx<'a> {
    fn new(dag: &'a Dag, k: usize) -> Self {
        Self::with_kernel(dag, k, KernelMode::default())
    }

    pub(crate) fn with_kernel(dag: &'a Dag, k: usize, mode: KernelMode) -> Self {
        assert!(k >= 1, "k must be at least 1");
        ListCtx {
            dag,
            k,
            mode,
            stack: Vec::with_capacity(k),
            bufs: vec![Vec::new(); k.saturating_sub(1)],
            levels: vec![Vec::new(); k.saturating_sub(1)],
            dense: DenseIndex::default(),
        }
    }

    /// Runs the recursion for one root. The callback returns `false` to
    /// stop; the return value propagates that request outward.
    pub(crate) fn run_root<F: FnMut(&[NodeId]) -> bool>(&mut self, u: NodeId, cb: &mut F) -> bool {
        if self.k == 1 {
            return cb(&[u]);
        }
        let d = self.dag.out_degree(u);
        if d < self.k - 1 {
            return true;
        }
        if self.mode.dense_for(self.k, d) {
            return self.run_root_dense(u, cb);
        }
        self.stack.clear();
        self.stack.push(u);
        let mut first = std::mem::take(&mut self.bufs[0]);
        first.clear();
        first.extend_from_slice(self.dag.out_neighbors(u));
        let keep_going = self.recurse(self.k - 1, &first, cb);
        self.bufs[0] = first;
        keep_going
    }

    /// Extends the member stack with `l` more nodes drawn from `cand`.
    /// Returns `false` when the callback requested a stop.
    fn recurse<F: FnMut(&[NodeId]) -> bool>(
        &mut self,
        l: usize,
        cand: &[NodeId],
        cb: &mut F,
    ) -> bool {
        if cand.len() < l {
            return true;
        }
        if l == 1 {
            for &v in cand {
                self.stack.push(v);
                let keep_going = cb(&self.stack);
                self.stack.pop();
                if !keep_going {
                    return false;
                }
            }
            return true;
        }
        let depth = self.k - l; // 1-based depth into bufs
        let mut sub = std::mem::take(&mut self.bufs[depth]);
        let mut keep_going = true;
        for &v in cand {
            // Only descend through v's out-neighbours: this de-duplicates
            // member selection the same way the DAG de-duplicates roots.
            crate::list::intersect_sorted(cand, self.dag.out_neighbors(v), &mut sub);
            if sub.len() >= l - 1 {
                self.stack.push(v);
                keep_going = self.recurse(l - 1, &sub, cb);
                self.stack.pop();
                if !keep_going {
                    break;
                }
            }
        }
        self.bufs[depth] = sub;
        keep_going
    }

    /// Bitset-kernel root: densify `N⁺(u)` once, then recurse on words.
    /// Local ids ascend with global ids, so the visit (and therefore
    /// emission) order is exactly the slice kernel's.
    fn run_root_dense<F: FnMut(&[NodeId]) -> bool>(&mut self, u: NodeId, cb: &mut F) -> bool {
        let d = self.dense.build(self.dag, u);
        self.stack.clear();
        self.stack.push(u);
        let mut first = std::mem::take(&mut self.levels[0]);
        kernel::fill_full(&mut first, d);
        let keep_going = self.recurse_dense(self.k - 1, &first, cb);
        self.levels[0] = first;
        keep_going
    }

    fn recurse_dense<F: FnMut(&[NodeId]) -> bool>(
        &mut self,
        l: usize,
        cand: &[u64],
        cb: &mut F,
    ) -> bool {
        if kernel::count_ones(cand) < l {
            return true;
        }
        if l == 1 {
            for i in kernel::ones(cand) {
                self.stack.push(self.dense.globals[i]);
                let keep_going = cb(&self.stack);
                self.stack.pop();
                if !keep_going {
                    return false;
                }
            }
            return true;
        }
        let depth = self.k - l;
        let mut sub = std::mem::take(&mut self.levels[depth]);
        let mut keep_going = true;
        for i in kernel::ones(cand) {
            kernel::and_into(&mut sub, cand, self.dense.row(i));
            if kernel::count_ones(&sub) >= l - 1 {
                self.stack.push(self.dense.globals[i]);
                keep_going = self.recurse_dense(l - 1, &sub, cb);
                self.stack.pop();
                if !keep_going {
                    break;
                }
            }
        }
        self.levels[depth] = sub;
        keep_going
    }
}

/// `out = a ∩ b` for sorted slices; clears `out` first.
pub(crate) fn intersect_sorted(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    // Galloping is not worth it at these sizes; plain merge is branch-cheap.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dkc_graph::{CsrGraph, NodeOrder, OrderingKind};
    use std::collections::BTreeSet;

    /// Fig. 2 graph of the paper (v1..v9 → 0..8), with seven 3-cliques.
    pub(crate) fn paper_graph() -> CsrGraph {
        CsrGraph::from_edges(
            9,
            vec![
                (0, 2),
                (0, 5),
                (2, 5),
                (2, 4),
                (4, 5),
                (4, 7),
                (5, 7),
                (4, 6),
                (6, 7),
                (6, 8),
                (7, 8),
                (3, 6),
                (3, 8),
                (1, 3),
                (1, 8),
            ],
        )
        .unwrap()
    }

    pub(crate) fn dag_of(g: &CsrGraph, kind: OrderingKind) -> Dag {
        Dag::from_graph(g, NodeOrder::compute(g, kind))
    }

    fn clique_set(dag: &Dag, k: usize) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for_each_kclique(dag, k, |nodes| {
            let mut v = nodes.to_vec();
            v.sort_unstable();
            assert!(out.insert(v), "clique reported twice: {nodes:?}");
        });
        out
    }

    #[test]
    fn paper_graph_has_exactly_the_seven_3cliques_of_example1() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Identity);
        let expected: BTreeSet<Vec<NodeId>> = [
            vec![0, 2, 5], // C1 = (v1, v3, v6)
            vec![2, 4, 5], // C2 = (v3, v5, v6)
            vec![4, 5, 7], // C3 = (v5, v6, v8)
            vec![4, 6, 7], // C4 = (v5, v7, v8)
            vec![6, 7, 8], // C5 = (v7, v8, v9)
            vec![3, 6, 8], // C6 = (v4, v7, v9)
            vec![1, 3, 8], // C7 = (v2, v4, v9)
        ]
        .into_iter()
        .collect();
        assert_eq!(clique_set(&dag, 3), expected);
    }

    #[test]
    fn enumeration_is_order_invariant() {
        let g = paper_graph();
        let identity = clique_set(&dag_of(&g, OrderingKind::Identity), 3);
        for kind in [OrderingKind::DegreeAsc, OrderingKind::DegreeDesc, OrderingKind::Degeneracy] {
            assert_eq!(clique_set(&dag_of(&g, kind), 3), identity, "{kind:?}");
        }
    }

    #[test]
    fn kernel_modes_emit_identical_sequences() {
        let g = paper_graph();
        for kind in [OrderingKind::Identity, OrderingKind::Degeneracy] {
            let dag = dag_of(&g, kind);
            for k in 1..=4 {
                let mut baseline = Vec::new();
                for_each_kclique_kernel(&dag, k, KernelMode::Slice, |c| baseline.push(c.to_vec()));
                for mode in [KernelMode::Bitset, KernelMode::Adaptive] {
                    let mut got = Vec::new();
                    for_each_kclique_kernel(&dag, k, mode, |c| got.push(c.to_vec()));
                    assert_eq!(got, baseline, "{kind:?} k={k} {mode}");
                }
            }
        }
    }

    #[test]
    fn k1_reports_nodes_and_k2_reports_edges() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        assert_eq!(clique_set(&dag, 1).len(), 9);
        assert_eq!(clique_set(&dag, 2).len(), 15);
    }

    #[test]
    fn root_is_highest_ranked_member() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        for_each_kclique(&dag, 3, |nodes| {
            let root = nodes[0];
            for &v in &nodes[1..] {
                assert!(dag.rank(v) < dag.rank(root));
            }
        });
    }

    #[test]
    fn rooted_enumeration_partitions_the_clique_set() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Identity);
        let mut total = 0usize;
        for u in 0..9 {
            for_each_kclique_rooted(&dag, u, 3, |_| total += 1);
        }
        assert_eq!(total, 7);
    }

    #[test]
    fn k4_in_complete_graph() {
        // K6 has C(6,4) = 15 4-cliques, C(6,3) = 20 triangles.
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(6, edges).unwrap();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        assert_eq!(clique_set(&dag, 3).len(), 20);
        assert_eq!(clique_set(&dag, 4).len(), 15);
        assert_eq!(clique_set(&dag, 5).len(), 6);
        assert_eq!(clique_set(&dag, 6).len(), 1);
        assert_eq!(clique_set(&dag, 7).len(), 0);
    }

    #[test]
    fn forced_bitset_handles_complete_graphs() {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(6, edges).unwrap();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        for k in 3..=7 {
            assert_eq!(
                collect_kcliques_kernel(&dag, k, KernelMode::Bitset),
                collect_kcliques_kernel(&dag, k, KernelMode::Slice),
                "k={k}"
            );
        }
    }

    #[test]
    fn triangle_free_graph_has_no_3cliques() {
        // C5 (5-cycle) is triangle-free.
        let g = CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        assert!(clique_set(&dag, 3).is_empty());
    }

    #[test]
    fn collect_matches_for_each() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Identity);
        let collected = collect_kcliques(&dag, 3);
        assert_eq!(collected.len(), 7);
        let set: BTreeSet<Vec<NodeId>> = collected.iter().map(|c| c.as_slice().to_vec()).collect();
        assert_eq!(set, clique_set(&dag, 3));
    }

    #[test]
    fn bounded_collection_respects_the_budget() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        // Exactly at the limit succeeds.
        let ok = collect_kcliques_bounded(&dag, 3, 7).unwrap();
        assert_eq!(ok.len(), 7);
        // Below the limit aborts without materialising everything.
        assert_eq!(collect_kcliques_bounded(&dag, 3, 6), Err(6));
        assert_eq!(collect_kcliques_bounded(&dag, 3, 0), Err(0));
        // Generous limit behaves like the unbounded collector.
        let all = collect_kcliques_bounded(&dag, 3, 1_000).unwrap();
        assert_eq!(all.len(), collect_kcliques(&dag, 3).len());
    }

    #[test]
    fn bounded_parallel_matches_sequential_decisions_and_output() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Degeneracy);
        for mode in [KernelMode::Slice, KernelMode::Bitset, KernelMode::Adaptive] {
            for threads in [1usize, 2, 8] {
                let par = ParConfig::new(threads).with_chunk(1);
                for limit in [0usize, 3, 6, 7, 1000] {
                    let seq = collect_kcliques_bounded(&dag, 3, limit);
                    let par_res = collect_kcliques_bounded_par(&dag, 3, limit, par, mode);
                    assert_eq!(par_res, seq, "threads={threads} limit={limit} {mode}");
                }
            }
        }
    }

    #[test]
    fn early_stop_enumeration_visits_a_prefix() {
        let g = paper_graph();
        let dag = dag_of(&g, OrderingKind::Identity);
        let mut seen = 0;
        for_each_kclique_while(&dag, 3, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3, "stopped after the third clique");
    }

    #[test]
    fn intersect_sorted_basic() {
        let mut out = Vec::new();
        intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
        intersect_sorted(&[], &[1], &mut out);
        assert!(out.is_empty());
    }
}
