//! Property-based tests: the optimised listing/counting/search machinery is
//! compared against brute-force references on small random graphs.

use std::collections::BTreeSet;

use dkc_clique::{
    collect_kcliques, collect_kcliques_bounded, collect_kcliques_bounded_par,
    collect_kcliques_in_subset, collect_kcliques_kernel, collect_kcliques_parallel,
    collect_kcliques_parallel_kernel, count_kcliques, count_kcliques_kernel,
    count_kcliques_parallel, node_scores, node_scores_kernel, node_scores_parallel, Clique,
    FirstFinder, KernelMode, MinScoreFinder,
};
use dkc_graph::{CsrGraph, Dag, DynGraph, NodeId, NodeOrder, OrderingKind};
use dkc_par::ParConfig;
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (4..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| CsrGraph::from_edges(n as usize, edges).unwrap())
    })
}

/// Brute force: all k-subsets that are pairwise adjacent.
fn brute_force_cliques(g: &CsrGraph, k: usize) -> BTreeSet<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut out = BTreeSet::new();
    let mut subset: Vec<NodeId> = Vec::new();
    fn rec(
        g: &CsrGraph,
        k: usize,
        start: NodeId,
        subset: &mut Vec<NodeId>,
        out: &mut BTreeSet<Vec<NodeId>>,
    ) {
        if subset.len() == k {
            out.insert(subset.clone());
            return;
        }
        for v in start..g.num_nodes() as NodeId {
            if subset.iter().all(|&u| g.has_edge(u, v)) {
                subset.push(v);
                rec(g, k, v + 1, subset, out);
                subset.pop();
            }
        }
    }
    if k <= n {
        rec(g, k, 0, &mut subset, &mut out);
    }
    out
}

fn dag(g: &CsrGraph, kind: OrderingKind) -> Dag {
    Dag::from_graph(g, NodeOrder::compute(g, kind))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn listing_matches_brute_force(g in graph_strategy(12, 50), k in 3usize..=5) {
        let expected = brute_force_cliques(&g, k);
        for kind in [OrderingKind::Identity, OrderingKind::Degeneracy, OrderingKind::DegreeAsc] {
            let d = dag(&g, kind);
            let got: BTreeSet<Vec<NodeId>> = collect_kcliques(&d, k)
                .iter()
                .map(|c| c.as_slice().to_vec())
                .collect();
            prop_assert_eq!(&got, &expected, "ordering {:?}", kind);
            prop_assert_eq!(count_kcliques(&d, k), expected.len() as u64);
        }
    }

    #[test]
    fn node_scores_sum_to_k_times_count(g in graph_strategy(14, 70), k in 3usize..=5) {
        let d = dag(&g, OrderingKind::Degeneracy);
        let scores = node_scores(&d, k);
        let total = count_kcliques(&d, k);
        prop_assert_eq!(scores.iter().sum::<u64>(), k as u64 * total);
        // Per-node cross-check against brute force.
        let cliques = brute_force_cliques(&g, k);
        for u in 0..g.num_nodes() as NodeId {
            let expected = cliques.iter().filter(|c| c.contains(&u)).count() as u64;
            prop_assert_eq!(scores[u as usize], expected, "node {}", u);
        }
    }

    #[test]
    fn subset_listing_equals_restricted_brute_force(
        g in graph_strategy(14, 70),
        k in 3usize..=4,
        mask in proptest::collection::vec(any::<bool>(), 14),
    ) {
        let nodes: Vec<NodeId> = (0..g.num_nodes() as NodeId)
            .filter(|&u| mask.get(u as usize).copied().unwrap_or(false))
            .collect();
        let dyn_g = DynGraph::from_csr(&g);
        let got: BTreeSet<Vec<NodeId>> = collect_kcliques_in_subset(&dyn_g, &nodes, k)
            .iter()
            .map(|c| c.as_slice().to_vec())
            .collect();
        let expected: BTreeSet<Vec<NodeId>> = brute_force_cliques(&g, k)
            .into_iter()
            .filter(|c| c.iter().all(|u| nodes.contains(u)))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn first_finder_finds_iff_a_rooted_clique_exists(
        g in graph_strategy(12, 60),
        k in 3usize..=4,
    ) {
        let d = dag(&g, OrderingKind::Degeneracy);
        let valid = vec![true; g.num_nodes()];
        let mut finder = FirstFinder::new(&d, k);
        let all = brute_force_cliques(&g, k);
        for u in 0..g.num_nodes() as NodeId {
            let rooted_exists = all.iter().any(|c| {
                c.contains(&u) && c.iter().all(|&v| d.rank(v) <= d.rank(u))
            });
            match finder.find(u, &valid) {
                Some(c) => {
                    prop_assert!(rooted_exists, "found {:?} though none expected", c);
                    prop_assert!(c.contains(u));
                    prop_assert!(all.contains(c.as_slice()));
                }
                None => prop_assert!(!rooted_exists, "missed a clique rooted at {}", u),
            }
        }
    }

    #[test]
    fn min_finder_is_optimal_and_prune_invariant(
        g in graph_strategy(12, 60),
        k in 3usize..=4,
    ) {
        let d = dag(&g, OrderingKind::Degeneracy);
        let scores = node_scores(&d, k);
        let valid = vec![true; g.num_nodes()];
        let mut pruned = MinScoreFinder::new(&d, &scores, k, true);
        let mut exhaustive = MinScoreFinder::new(&d, &scores, k, false);
        let all = brute_force_cliques(&g, k);
        for u in 0..g.num_nodes() as NodeId {
            let a = pruned.find(u, &valid);
            let b = exhaustive.find(u, &valid);
            prop_assert_eq!(a, b, "prune changed the result at root {}", u);
            if let Some(sc) = a {
                // No rooted clique may score lower.
                let min_rooted = all
                    .iter()
                    .filter(|c| c.contains(&u) && c.iter().all(|&v| d.rank(v) <= d.rank(u)))
                    .map(|c| c.iter().map(|&v| scores[v as usize]).sum::<u64>())
                    .min();
                prop_assert_eq!(Some(sc.score), min_rooted);
            }
        }
    }

    #[test]
    fn parallel_machinery_is_thread_invariant(
        g in graph_strategy(40, 250),
        k in 3usize..=5,
    ) {
        let d = dag(&g, OrderingKind::Degeneracy);
        let count = count_kcliques(&d, k);
        let scores = node_scores(&d, k);
        let listed = collect_kcliques(&d, k);
        for threads in [1usize, 2, 8] {
            // Tiny chunks force genuine fan-out on these small graphs.
            let par = ParConfig::new(threads).with_chunk(3);
            prop_assert_eq!(
                count_kcliques_parallel(&d, k, par), count, "count, threads {}", threads);
            prop_assert_eq!(
                &node_scores_parallel(&d, k, par), &scores, "scores, threads {}", threads);
            // Listing must match element-for-element (order included).
            prop_assert_eq!(
                &collect_kcliques_parallel(&d, k, par), &listed, "listing, threads {}", threads);
        }
    }

    #[test]
    fn kernel_modes_agree_on_cliques_counts_and_scores(
        g in graph_strategy(24, 140),
        k in 3usize..=5,
    ) {
        // The slice kernel is the reference; the forced-dense and adaptive
        // kernels must reproduce its cliques *in order*, its count and its
        // per-node scores — sequentially and on every executor shape.
        let d = dag(&g, OrderingKind::Degeneracy);
        let listed = collect_kcliques_kernel(&d, k, KernelMode::Slice);
        let count = count_kcliques(&d, k);
        let scores = node_scores(&d, k);
        prop_assert_eq!(count, listed.len() as u64);
        for mode in [KernelMode::Slice, KernelMode::Bitset, KernelMode::Adaptive] {
            prop_assert_eq!(
                &collect_kcliques_kernel(&d, k, mode), &listed, "sequential {}", mode);
            for threads in [1usize, 2, 8] {
                let par = ParConfig::new(threads).with_chunk(3);
                prop_assert_eq!(
                    &collect_kcliques_parallel_kernel(&d, k, par, mode), &listed,
                    "listing, threads {} {}", threads, mode);
                prop_assert_eq!(
                    count_kcliques_kernel(&d, k, par, mode), count,
                    "count, threads {} {}", threads, mode);
                prop_assert_eq!(
                    &node_scores_kernel(&d, k, par, mode), &scores,
                    "scores, threads {} {}", threads, mode);
            }
        }
    }

    #[test]
    fn bounded_collection_decision_is_schedule_and_kernel_free(
        g in graph_strategy(18, 90),
        k in 3usize..=4,
        limit in 0usize..=40,
    ) {
        // The shared-budget parallel collector must reach the sequential
        // collector's exact Err/Ok decision (and, on Ok, its exact output)
        // for every kernel and thread count — the monotone-criterion
        // determinism argument, exercised on random graphs.
        let d = dag(&g, OrderingKind::Degeneracy);
        let seq = collect_kcliques_bounded(&d, k, limit);
        for mode in [KernelMode::Slice, KernelMode::Bitset, KernelMode::Adaptive] {
            for threads in [1usize, 2, 8] {
                // Chunk 1 maximises interleaving opportunities.
                let par = ParConfig::new(threads).with_chunk(1);
                prop_assert_eq!(
                    &collect_kcliques_bounded_par(&d, k, limit, par, mode), &seq,
                    "threads {} limit {} {}", threads, limit, mode);
            }
        }
    }

    #[test]
    fn clique_disjointness_matches_set_semantics(
        a in proptest::collection::btree_set(0u32..30, 1..6),
        b in proptest::collection::btree_set(0u32..30, 1..6),
    ) {
        let ca = Clique::new(&a.iter().copied().collect::<Vec<_>>());
        let cb = Clique::new(&b.iter().copied().collect::<Vec<_>>());
        let expect = a.intersection(&b).next().is_none();
        prop_assert_eq!(ca.is_disjoint(&cb), expect);
        prop_assert_eq!(cb.is_disjoint(&ca), expect);
    }
}
