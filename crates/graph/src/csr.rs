use crate::{Edge, GraphError, NodeId};

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Neighbour lists are sorted ascending, contain no duplicates and no
/// self-loops. This is the canonical input representation of every static
/// solver in the workspace: adjacency tests are `O(log deg)` binary searches
/// and neighbourhood scans are cache-friendly slice walks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `neighbors` for node `u`. Length `n+1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists. Length `2m`.
    neighbors: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Self-loops are silently dropped and duplicate edges de-duplicated, so
    /// the result is always a simple graph. Edges referencing nodes `>= n`
    /// produce [`GraphError::NodeOutOfRange`].
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut deg = vec![0usize; n];
        let mut buf: Vec<Edge> = Vec::new();
        for (a, b) in edges {
            if a as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: a as u64, num_nodes: n });
            }
            if b as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: b as u64, num_nodes: n });
            }
            if a == b {
                continue; // drop self-loops
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            buf.push((lo, hi));
        }
        buf.sort_unstable();
        buf.dedup();
        for &(a, b) in &buf {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(a, b) in &buf {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // `buf` is sorted by (a, b); for node `a` the `b` targets arrive in
        // order, but the reverse direction does not, so sort each list.
        let mut g = CsrGraph { offsets, neighbors };
        for u in 0..n {
            let (s, e) = (g.offsets[u], g.offsets[u + 1]);
            g.neighbors[s..e].sort_unstable();
        }
        Ok(g)
    }

    /// Rebuilds a graph from pre-built CSR arrays, as produced by
    /// [`CsrGraph::offsets`] / [`CsrGraph::adjacency`] (the binary snapshot
    /// path). Every structural invariant is re-validated in `O(n + m log d)`
    /// — monotone offsets, sorted duplicate-free neighbour lists, no
    /// self-loops, in-range ids and symmetry — so untrusted input can never
    /// produce a malformed graph.
    pub fn from_raw_parts(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Result<Self, GraphError> {
        let invalid = |message: String| GraphError::InvalidCsr { message };
        if offsets.first() != Some(&0) {
            return Err(invalid("offsets must start with 0".into()));
        }
        if *offsets.last().expect("non-empty") != neighbors.len() {
            return Err(invalid(format!(
                "last offset {} != neighbour array length {}",
                offsets.last().unwrap(),
                neighbors.len()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("offsets must be non-decreasing".into()));
        }
        let n = offsets.len() - 1;
        let g = CsrGraph { offsets, neighbors };
        for u in 0..n as NodeId {
            let list = g.neighbors(u);
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(invalid(format!("neighbour list of {u} not strictly sorted")));
            }
            if let Some(&v) = list.last() {
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: v as u64, num_nodes: n });
                }
            }
            if list.binary_search(&u).is_ok() {
                return Err(invalid(format!("self-loop on node {u}")));
            }
            // Check symmetry once per undirected edge (u < v side).
            for &v in list.iter().filter(|&&v| v > u) {
                if g.neighbors(v).binary_search(&u).is_err() {
                    return Err(invalid(format!("edge ({u}, {v}) has no reverse entry")));
                }
            }
        }
        Ok(g)
    }

    /// The empty graph on zero nodes.
    pub fn empty() -> Self {
        CsrGraph { offsets: vec![0], neighbors: Vec::new() }
    }

    /// The raw CSR offset array (length `n + 1`), for serialisation.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated neighbour array (length `2m`), for
    /// serialisation. Per-node slices are exposed by [`CsrGraph::neighbors`].
    #[inline]
    pub fn adjacency(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbour slice of node `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Adjacency test via binary search: `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search the smaller list for a tiny constant-factor win.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Iterates every undirected edge exactly once as `(u, v)` with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Collects all edges into a vector (`u < v` per edge).
    pub fn edges(&self) -> Vec<Edge> {
        self.iter_edges().collect()
    }

    /// Iterates node ids `0..n`.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Number of common neighbours of `u` and `v` (sorted-merge intersection).
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut cnt = 0usize;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cnt += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        cnt
    }

    /// Approximate heap footprint in bytes (offsets + neighbour array).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; 3 pendant off 2.
        CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn has_edge_is_symmetric_and_rejects_loops() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_dropped() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = CsrGraph::from_edges(2, vec![(0, 5)]).unwrap_err();
        match err {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                assert_eq!(node, 5);
                assert_eq!(num_nodes, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn iter_edges_yields_each_edge_once_in_canonical_form() {
        let g = triangle_plus_pendant();
        let e = g.edges();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges(), Vec::<Edge>::new());
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = CsrGraph::from_edges(10, vec![(0, 1)]).unwrap();
        assert_eq!(g.num_nodes(), 10);
        for u in 2..10 {
            assert_eq!(g.degree(u), 0);
            assert!(g.neighbors(u).is_empty());
        }
    }

    #[test]
    fn common_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbor_count(0, 1), 1); // node 2
        assert_eq!(g.common_neighbor_count(0, 2), 1); // node 1
        assert_eq!(g.common_neighbor_count(0, 3), 1); // node 2
        assert_eq!(g.common_neighbor_count(1, 3), 1); // node 2
    }

    #[test]
    fn raw_parts_roundtrip() {
        let g = triangle_plus_pendant();
        let back = CsrGraph::from_raw_parts(g.offsets().to_vec(), g.adjacency().to_vec()).unwrap();
        assert_eq!(g, back);
        assert_eq!(CsrGraph::from_raw_parts(vec![0], vec![]).unwrap(), CsrGraph::empty());
    }

    #[test]
    fn raw_parts_validation_rejects_malformed_arrays() {
        // Empty offsets.
        assert!(CsrGraph::from_raw_parts(vec![], vec![]).is_err());
        // First offset non-zero.
        assert!(CsrGraph::from_raw_parts(vec![1, 2], vec![0, 0]).is_err());
        // Last offset disagrees with neighbour length.
        assert!(CsrGraph::from_raw_parts(vec![0, 1], vec![]).is_err());
        // Non-monotone offsets.
        assert!(CsrGraph::from_raw_parts(vec![0, 2, 1, 2], vec![1, 0]).is_err());
        // Unsorted neighbour list.
        assert!(CsrGraph::from_raw_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
        // Self-loop.
        assert!(CsrGraph::from_raw_parts(vec![0, 1, 2], vec![0, 0]).is_err());
        // Out-of-range id.
        assert!(CsrGraph::from_raw_parts(vec![0, 1, 2], vec![1, 9]).is_err());
        // Asymmetric adjacency: 0 lists 1 but 1 lists nothing back.
        assert!(CsrGraph::from_raw_parts(vec![0, 1, 1], vec![1]).is_err());
        for bad in [
            CsrGraph::from_raw_parts(vec![0, 2, 1, 2], vec![1, 0]).unwrap_err(),
            CsrGraph::from_raw_parts(vec![0, 1, 1], vec![1]).unwrap_err(),
        ] {
            assert!(matches!(bad, GraphError::InvalidCsr { .. }), "unexpected: {bad}");
        }
    }

    #[test]
    fn neighbors_always_sorted() {
        // Insert edges in scrambled order; the per-node lists must be sorted.
        let g = CsrGraph::from_edges(6, vec![(5, 0), (3, 0), (0, 4), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}
