//! Graph ingestion: text edge lists, binary CSR snapshots, and the
//! format-detecting loader.
//!
//! The paper's datasets come from KONECT and the Network Repository, which
//! ship whitespace-separated edge lists with `%` / `#` comment headers and
//! optional weight/timestamp columns. Parsing those at LiveJournal/Orkut
//! scale is itself a bottleneck, so ingestion is layered:
//!
//! * [`text`] — a chunked edge-list parser that byte-splits the input at
//!   line boundaries and parses chunks in parallel on the deterministic
//!   `dkc-par` executor. The merged result (graph, dense relabelling and
//!   error reporting included) is bit-identical to a sequential parse for
//!   any thread count or chunk size.
//! * [`snapshot`] — a versioned, checksummed binary CSR format (`.dkcsr`)
//!   so a graph parsed once can be reloaded with a single sequential read
//!   and a linear decode, skipping tokenising, interning and CSR
//!   construction entirely.
//! * [`load_graph`] — reads a file once and dispatches on the magic bytes,
//!   so every consumer accepts either format transparently.
//!
//! [`read_edge_list`] accepts the KONECT format, remaps arbitrary
//! (possibly sparse, 1-based) node labels onto dense `0..n` ids, and
//! returns the mapping so results can be reported in the original
//! labelling.

use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

use crate::{CsrGraph, GraphError, NodeId};
use dkc_par::ParConfig;

pub mod snapshot;
pub mod text;

pub use snapshot::{
    is_snapshot_bytes, read_snapshot, read_snapshot_bytes, read_snapshot_path, write_snapshot,
    write_snapshot_path, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use text::{
    parse_edge_list, parse_edge_list_chunked, parse_edge_list_sharded, read_edge_list,
    read_edge_list_from, read_edge_list_parallel, read_edge_list_str, write_edge_list,
    write_edge_list_labeled, write_edge_list_path, LoadStats, DEFAULT_INTERN_SHARDS,
};

/// Result of loading a graph: the dense graph plus the original node labels
/// and an O(1) label→id index.
///
/// Construction goes through [`LoadedGraph::new`] / [`LoadedGraph::identity`]
/// (or the loaders), which build the index. The `graph`/`labels` fields stay
/// `pub` for ergonomic read access; *mutating* `labels` in place desyncs
/// [`LoadedGraph::node_for_label`] — rebuild via [`LoadedGraph::new`] instead.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The dense, simple graph.
    pub graph: CsrGraph,
    /// `labels[u]` is the label the input file used for dense node `u`.
    pub labels: Vec<u64>,
    /// Inverse of `labels`: first-occurrence label → dense id.
    index: HashMap<u64, NodeId>,
}

impl LoadedGraph {
    /// Wraps a graph and its label table, building the label→id index.
    /// When a label appears more than once in `labels`, the *first*
    /// position wins — the behaviour the old linear scan had.
    pub fn new(graph: CsrGraph, labels: Vec<u64>) -> Self {
        let mut index = HashMap::with_capacity(labels.len());
        for (i, &l) in labels.iter().enumerate() {
            index.entry(l).or_insert(i as NodeId);
        }
        LoadedGraph { graph, labels, index }
    }

    /// Wraps a graph whose labels are its dense ids (`labels[u] == u`), the
    /// case for synthetic graphs and label-free snapshots.
    pub fn identity(graph: CsrGraph) -> Self {
        let labels: Vec<u64> = (0..graph.num_nodes() as u64).collect();
        Self::new(graph, labels)
    }

    pub(crate) fn from_parts(
        graph: CsrGraph,
        labels: Vec<u64>,
        index: HashMap<u64, NodeId>,
    ) -> Self {
        LoadedGraph { graph, labels, index }
    }

    /// Looks up the dense id of an original label in `O(1)`.
    pub fn node_for_label(&self, label: u64) -> Option<NodeId> {
        self.index.get(&label).copied()
    }

    /// True when the labels are exactly the dense ids.
    pub fn labels_are_identity(&self) -> bool {
        self.labels.iter().enumerate().all(|(i, &l)| l == i as u64)
    }
}

/// How [`load_graph`] obtained a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSource {
    /// Parsed from a text edge list.
    Text,
    /// Decoded from a binary `.dkcsr` snapshot.
    Snapshot,
}

impl std::fmt::Display for LoadSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadSource::Text => write!(f, "text"),
            LoadSource::Snapshot => write!(f, "snapshot"),
        }
    }
}

/// Provenance of one [`load_graph`] call, for `dkc stats`-style reporting.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Which path produced the graph.
    pub source: LoadSource,
    /// Bytes read from disk.
    pub bytes: u64,
    /// Text-parse statistics (`None` for snapshot loads).
    pub stats: Option<LoadStats>,
    /// Whether the file bytes came from a zero-copy memory mapping
    /// (`dkc-mmap`) rather than a buffered read.
    pub mapped: bool,
    /// Wall-clock time for the whole load (read + parse/decode + build).
    pub elapsed: Duration,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "source={} bytes={}{} ({:.1} ms)",
            self.source,
            self.bytes,
            if self.mapped { " mmap" } else { "" },
            self.elapsed.as_secs_f64() * 1e3
        )?;
        if let Some(s) = &self.stats {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

/// Loads a graph file of either supported format.
///
/// The file is memory-mapped when the platform allows it (zero-copy: the
/// decode reads straight from the page cache) and read into memory
/// otherwise; the first bytes decide the format ([`SNAPSHOT_MAGIC`] →
/// snapshot decode, anything else → parallel text parse on `par`). Returns
/// the graph together with a [`LoadReport`] describing which path ran and
/// how long it took.
pub fn load_graph<P: AsRef<Path>>(
    path: P,
    par: ParConfig,
) -> Result<(LoadedGraph, LoadReport), GraphError> {
    let start = std::time::Instant::now();
    let path = path.as_ref();
    // Mapping failures (exotic filesystems, non-Unix) fall back to the
    // buffered read; decode errors are real and propagate either way,
    // since both paths see the identical bytes.
    let mapping = std::fs::File::open(path).ok().and_then(|f| dkc_mmap::Mmap::map(&f).ok());
    let buffered;
    let (bytes, mapped): (&[u8], bool) = match &mapping {
        Some(map) => (map, true),
        None => {
            buffered = std::fs::read(path)?;
            (&buffered, false)
        }
    };
    let (loaded, source, stats) = if is_snapshot_bytes(bytes) {
        (snapshot::read_snapshot_bytes(bytes)?, LoadSource::Snapshot, None)
    } else {
        let (loaded, stats) = text::parse_edge_list(bytes, par)?;
        (loaded, LoadSource::Text, Some(stats))
    };
    let report =
        LoadReport { source, bytes: bytes.len() as u64, stats, mapped, elapsed: start.elapsed() };
    Ok((loaded, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dkc_io_{}_{tag}", std::process::id()))
    }

    #[test]
    fn label_index_is_first_wins_and_o1() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let loaded = LoadedGraph::new(g.clone(), vec![10, 20, 10]);
        assert_eq!(loaded.node_for_label(10), Some(0), "ties resolve to the first position");
        assert_eq!(loaded.node_for_label(20), Some(1));
        assert_eq!(loaded.node_for_label(99), None);
        let id = LoadedGraph::identity(g);
        assert!(id.labels_are_identity());
        assert_eq!(id.node_for_label(2), Some(2));
    }

    #[test]
    fn load_graph_detects_both_formats() {
        let text_path = temp_path("detect.txt");
        let snap_path = temp_path("detect.dkcsr");
        std::fs::write(&text_path, "1 2\n2 3\n3 1\n").unwrap();
        let (from_text, report) = load_graph(&text_path, ParConfig::sequential()).unwrap();
        assert_eq!(report.source, LoadSource::Text);
        assert!(report.stats.is_some());
        assert!(report.to_string().contains("source=text"));

        write_snapshot_path(&from_text, &snap_path).unwrap();
        let (from_snap, report) = load_graph(&snap_path, ParConfig::sequential()).unwrap();
        assert_eq!(report.source, LoadSource::Snapshot);
        assert!(report.stats.is_none());
        if cfg!(unix) {
            assert!(report.mapped, "snapshot loads memory-map on Unix");
            assert!(report.to_string().contains("mmap"));
        }
        assert_eq!(from_snap.graph, from_text.graph);
        assert_eq!(from_snap.labels, from_text.labels);

        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn load_graph_missing_file_is_io_error() {
        let err = load_graph("/definitely/not/here.txt", ParConfig::sequential()).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
