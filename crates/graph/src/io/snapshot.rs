//! The `.dkcsr` binary CSR snapshot format.
//!
//! Parsing a SNAP-scale edge list costs tokenising, label interning, edge
//! sorting and CSR construction on every run. A snapshot amortises all of
//! that: it stores the finished CSR arrays (plus the label table) so a
//! reload is one sequential read, a linear little-endian decode, and a
//! structural re-validation — no per-edge work beyond a copy.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"DKCSR\0\0\0"
//!      8     4  version (currently 1)
//!     12     4  reserved (0)
//!     16     8  n            — number of nodes
//!     24     8  adj_len      — neighbour array length (2m)
//!     32     8  labels_len   — label table length (0 = identity labels)
//!     40     8  checksum     — FNV-1a 64 over the whole payload
//!     48     …  payload:
//!               offsets   (n+1) × u64
//!               adjacency adj_len × u32
//!               padding   to the next 8-byte boundary
//!               labels    labels_len × u64
//! ```
//!
//! Every section starts 8-byte aligned in the file. The checksum covers the
//! payload, the header declares every section length, and the decoded
//! arrays are re-validated by [`CsrGraph::from_raw_parts`] — a truncated,
//! bit-flipped or wrong-version file yields a structured
//! [`SnapshotError`], never a wrong graph.

use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::io::LoadedGraph;
use crate::{CsrGraph, GraphError, NodeId, SnapshotError};

/// The 8 magic bytes every `.dkcsr` file starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DKCSR\0\0\0";

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_BYTES: usize = 48;

/// FNV-1a 64-bit, fed section by section during write and over the read
/// payload during load.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
}

/// True when `bytes` starts with the snapshot magic — the format sniff
/// used by [`crate::io::load_graph`].
pub fn is_snapshot_bytes(bytes: &[u8]) -> bool {
    bytes.len() >= SNAPSHOT_MAGIC.len() && bytes[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
}

fn pad_len(adj_len: usize) -> usize {
    (8 - (adj_len * 4) % 8) % 8
}

/// Buffered little-endian section writer that updates the checksum as it
/// goes, so the payload is never materialised as one big allocation.
struct SectionWriter<W: Write> {
    w: BufWriter<W>,
    hash: Fnv,
}

impl<W: Write> SectionWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.hash.update(bytes);
        self.w.write_all(bytes)
    }
}

fn payload_checksum(loaded: &LoadedGraph, labels_len: usize) -> Fnv {
    let mut hash = Fnv::new();
    for &o in loaded.graph.offsets() {
        hash.update(&(o as u64).to_le_bytes());
    }
    for &v in loaded.graph.adjacency() {
        hash.update(&v.to_le_bytes());
    }
    hash.update(&vec![0u8; pad_len(loaded.graph.adjacency().len())]);
    for &l in &loaded.labels[..labels_len] {
        hash.update(&l.to_le_bytes());
    }
    hash
}

/// Writes a snapshot of `loaded` to `writer`.
///
/// When the labels are the identity mapping they are elided
/// (`labels_len = 0`); [`read_snapshot`] reconstructs them, so the
/// round-trip is exact either way.
pub fn write_snapshot<W: Write>(loaded: &LoadedGraph, writer: W) -> Result<(), GraphError> {
    let g = &loaded.graph;
    let labels_len = if loaded.labels_are_identity() { 0 } else { loaded.labels.len() };
    if labels_len != 0 && labels_len != g.num_nodes() {
        return Err(GraphError::InvalidCsr {
            message: format!("label table length {labels_len} != node count {}", g.num_nodes()),
        });
    }
    // Pass 1: checksum (cheap CPU-only scan), so the header can be written
    // before the payload without Seek.
    let checksum = payload_checksum(loaded, labels_len).0;

    let mut out = SectionWriter { w: BufWriter::new(writer), hash: Fnv::new() };
    out.w.write_all(&SNAPSHOT_MAGIC)?;
    out.w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
    out.w.write_all(&0u32.to_le_bytes())?;
    out.w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    out.w.write_all(&(g.adjacency().len() as u64).to_le_bytes())?;
    out.w.write_all(&(labels_len as u64).to_le_bytes())?;
    out.w.write_all(&checksum.to_le_bytes())?;
    // Pass 2: payload.
    for &o in g.offsets() {
        out.put(&(o as u64).to_le_bytes())?;
    }
    for &v in g.adjacency() {
        out.put(&v.to_le_bytes())?;
    }
    out.put(&vec![0u8; pad_len(g.adjacency().len())])?;
    for &l in &loaded.labels[..labels_len] {
        out.put(&l.to_le_bytes())?;
    }
    debug_assert_eq!(out.hash.0, checksum);
    out.w.flush()?;
    Ok(())
}

/// Writes a snapshot to a file path. See [`write_snapshot`].
pub fn write_snapshot_path<P: AsRef<Path>>(
    loaded: &LoadedGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(loaded, file)
}

fn header_u64(header: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"))
}

fn section_len(count: u64, width: u64) -> Result<u64, GraphError> {
    count
        .checked_mul(width)
        .ok_or_else(|| SnapshotError::Corrupt { message: "section size overflow".into() }.into())
}

/// Validated header fields.
struct Header {
    n: u64,
    adj_len: u64,
    labels_len: u64,
    checksum: u64,
}

/// Validates magic/version and the internal consistency of a complete
/// header, and returns the declared payload size.
fn parse_header(header: &[u8]) -> Result<(Header, u64), GraphError> {
    debug_assert_eq!(header.len(), HEADER_BYTES);
    if !is_snapshot_bytes(header) {
        return Err(SnapshotError::BadMagic.into());
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version }.into());
    }
    let h = Header {
        n: header_u64(header, 16),
        adj_len: header_u64(header, 24),
        labels_len: header_u64(header, 32),
        checksum: header_u64(header, 40),
    };
    if h.labels_len != 0 && h.labels_len != h.n {
        return Err(SnapshotError::Corrupt {
            message: format!("label table length {} != node count {}", h.labels_len, h.n),
        }
        .into());
    }
    let offsets_bytes = section_len(
        h.n.checked_add(1).ok_or_else(|| {
            GraphError::Snapshot(SnapshotError::Corrupt { message: "node count overflow".into() })
        })?,
        8,
    )?;
    let pad = pad_len(usize::try_from(h.adj_len).map_err(|_| {
        GraphError::Snapshot(SnapshotError::Corrupt { message: "adjacency too large".into() })
    })?) as u64;
    let payload_bytes = offsets_bytes
        .checked_add(section_len(h.adj_len, 4)?)
        .and_then(|v| v.checked_add(pad))
        .and_then(|v| v.checked_add(section_len(h.labels_len, 8).ok()?))
        .ok_or_else(|| {
            GraphError::Snapshot(SnapshotError::Corrupt { message: "payload size overflow".into() })
        })?;
    Ok((h, payload_bytes))
}

/// Checksums and decodes a complete payload slice into a graph.
fn decode_payload(h: &Header, payload: &[u8]) -> Result<LoadedGraph, GraphError> {
    let mut hash = Fnv::new();
    hash.update(payload);
    if hash.0 != h.checksum {
        return Err(SnapshotError::ChecksumMismatch { stored: h.checksum, computed: hash.0 }.into());
    }

    // Decode sections (linear LE decode; sections are 8-byte aligned).
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| {
            GraphError::Snapshot(SnapshotError::Corrupt { message: format!("{what} too large") })
        })
    };
    let n = to_usize(h.n, "node count")?;
    let adj_len = to_usize(h.adj_len, "adjacency length")?;
    let labels_len = to_usize(h.labels_len, "label table length")?;
    let (offsets_sec, rest) = payload.split_at((n + 1) * 8);
    let (adj_sec, rest) = rest.split_at(adj_len * 4);
    let labels_sec = &rest[pad_len(adj_len)..];

    // Fast path: when the source bytes are little-endian-native and the
    // sections land aligned (always true for a memory-mapped file — every
    // section starts 8-byte aligned in the format — and almost always for
    // a heap buffer), reinterpret in place and bulk-copy instead of
    // decoding word by word. `None` falls back to the portable decode;
    // both produce identical arrays.
    let mut offsets = Vec::with_capacity(n + 1);
    match dkc_mmap::cast_u64s(offsets_sec) {
        Some(words) => {
            for &w in words {
                offsets.push(to_usize(w, "offset")?);
            }
        }
        None => {
            for chunk in offsets_sec.chunks_exact(8) {
                offsets.push(to_usize(u64::from_le_bytes(chunk.try_into().expect("8")), "offset")?);
            }
        }
    }
    let mut adjacency: Vec<NodeId> = Vec::with_capacity(adj_len);
    match dkc_mmap::cast_u32s(adj_sec) {
        Some(words) => adjacency.extend_from_slice(words),
        None => {
            for chunk in adj_sec.chunks_exact(4) {
                adjacency.push(u32::from_le_bytes(chunk.try_into().expect("4")));
            }
        }
    }
    let graph = CsrGraph::from_raw_parts(offsets, adjacency)?;
    if labels_len == 0 {
        Ok(LoadedGraph::identity(graph))
    } else {
        let mut labels = Vec::with_capacity(labels_len);
        match dkc_mmap::cast_u64s(labels_sec) {
            Some(words) => labels.extend_from_slice(words),
            None => {
                for chunk in labels_sec.chunks_exact(8) {
                    labels.push(u64::from_le_bytes(chunk.try_into().expect("8")));
                }
            }
        }
        Ok(LoadedGraph::new(graph, labels))
    }
}

/// Decodes a snapshot already held in memory, borrowing the payload
/// directly from `bytes` — no second copy. This is the path
/// [`crate::io::load_graph`] and [`read_snapshot_path`] take, so a file
/// load peaks at the file buffer plus the decoded arrays only.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<LoadedGraph, GraphError> {
    if bytes.len() < HEADER_BYTES {
        let prefix = bytes.len().min(SNAPSHOT_MAGIC.len());
        if bytes[..prefix] != SNAPSHOT_MAGIC[..prefix] {
            return Err(SnapshotError::BadMagic.into());
        }
        return Err(SnapshotError::Truncated {
            expected: HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        }
        .into());
    }
    let (header, payload) = bytes.split_at(HEADER_BYTES);
    let (h, payload_bytes) = parse_header(header)?;
    if (payload.len() as u64) < payload_bytes {
        return Err(SnapshotError::Truncated {
            expected: payload_bytes,
            actual: payload.len() as u64,
        }
        .into());
    }
    decode_payload(&h, &payload[..payload_bytes as usize])
}

/// Reads a snapshot from any reader.
///
/// The payload is consumed with one bounded sequential read; truncation,
/// bit flips and version skew each produce their own [`SnapshotError`]
/// before any graph is constructed. When the bytes are already in memory,
/// [`read_snapshot_bytes`] skips the intermediate payload buffer.
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<LoadedGraph, GraphError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut got = 0usize;
    while got < HEADER_BYTES {
        let n = reader.read(&mut header[got..])?;
        if n == 0 {
            if got >= SNAPSHOT_MAGIC.len() && !is_snapshot_bytes(&header[..got]) {
                return Err(SnapshotError::BadMagic.into());
            }
            return Err(SnapshotError::Truncated {
                expected: HEADER_BYTES as u64,
                actual: got as u64,
            }
            .into());
        }
        got += n;
    }
    let (h, payload_bytes) = parse_header(&header)?;
    // Bounded read: `take` stops at the declared size, `read_to_end` grows
    // the buffer as data actually arrives — a lying header on a small file
    // fails the length check instead of a giant allocation.
    let mut payload = Vec::new();
    reader.take(payload_bytes).read_to_end(&mut payload)?;
    if (payload.len() as u64) < payload_bytes {
        return Err(SnapshotError::Truncated {
            expected: payload_bytes,
            actual: payload.len() as u64,
        }
        .into());
    }
    decode_payload(&h, &payload)
}

/// Reads a snapshot from a file path, memory-mapping it when the platform
/// allows (zero-copy: the decode reads straight from the page cache and the
/// aligned sections bulk-copy) and falling back to one buffered sequential
/// read otherwise. See [`read_snapshot_bytes`].
pub fn read_snapshot_path<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    let path = path.as_ref();
    // Only a mapping failure falls back — decode errors propagate, since
    // the buffered path would see the identical bytes.
    if let Ok(file) = std::fs::File::open(path) {
        if let Ok(map) = dkc_mmap::Mmap::map(&file) {
            return read_snapshot_bytes(&map);
        }
    }
    let bytes = std::fs::read(path)?;
    read_snapshot_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_edge_list_str;

    fn sample() -> LoadedGraph {
        read_edge_list_str("10 20\n20 30\n30 10\n30 40\n").unwrap()
    }

    fn snapshot_bytes(loaded: &LoadedGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(loaded, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_graph_and_labels() {
        let loaded = sample();
        let buf = snapshot_bytes(&loaded);
        assert!(is_snapshot_bytes(&buf));
        // Both decode paths: the generic reader and the borrowed-slice one.
        for back in [read_snapshot(&buf[..]).unwrap(), read_snapshot_bytes(&buf).unwrap()] {
            assert_eq!(back.graph, loaded.graph);
            assert_eq!(back.labels, loaded.labels);
            assert_eq!(back.node_for_label(30), loaded.node_for_label(30));
        }
    }

    #[test]
    fn slice_decode_rejects_damage_like_the_reader() {
        let buf = snapshot_bytes(&sample());
        for cut in [0, 7, 20, HEADER_BYTES, buf.len() - 1] {
            let err = read_snapshot_bytes(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::Snapshot(SnapshotError::Truncated { .. } | SnapshotError::BadMagic)
                ),
                "cut={cut}: {err}"
            );
        }
        let err = read_snapshot_bytes(b"plain text, wrong magic").unwrap_err();
        assert!(matches!(err, GraphError::Snapshot(SnapshotError::BadMagic)), "{err}");
        let mut flipped = buf.clone();
        flipped[HEADER_BYTES + 1] ^= 0x10;
        let err = read_snapshot_bytes(&flipped).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn path_read_maps_and_matches_buffered_decode() {
        let loaded = sample();
        let buf = snapshot_bytes(&loaded);
        let path =
            std::env::temp_dir().join(format!("dkc_snapshot_mmap_{}.dkcsr", std::process::id()));
        std::fs::write(&path, &buf).unwrap();
        let via_path = read_snapshot_path(&path).unwrap();
        assert_eq!(via_path.graph, loaded.graph);
        assert_eq!(via_path.labels, loaded.labels);
        // Corruption through the mapped path yields the same structured
        // error the buffered path gives, not a fallback re-read.
        let mut flipped = buf.clone();
        flipped[HEADER_BYTES + 1] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = read_snapshot_path(&path).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identity_labels_are_elided_and_reconstructed() {
        let g = CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let loaded = LoadedGraph::identity(g.clone());
        let buf = snapshot_bytes(&loaded);
        // Elided label table: the 5-node identity snapshot must be smaller
        // than the 4-node labelled sample, which pays 8 bytes per label.
        let with_labels = snapshot_bytes(&sample());
        assert_eq!(header_u64(&buf, 32), 0, "labels_len must be 0 for identity labels");
        assert!(buf.len() < with_labels.len(), "{} vs {}", buf.len(), with_labels.len());
        let back = read_snapshot(&buf[..]).unwrap();
        assert_eq!(back.graph, g);
        assert!(back.labels_are_identity());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let loaded = LoadedGraph::identity(CsrGraph::empty());
        let back = read_snapshot(&snapshot_bytes(&loaded)[..]).unwrap();
        assert_eq!(back.graph.num_nodes(), 0);
        assert_eq!(back.graph.num_edges(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_snapshot(&b"not a snapshot at all, just text"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Snapshot(SnapshotError::BadMagic)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = snapshot_bytes(&sample());
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(SnapshotError::UnsupportedVersion { found: 2 })),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let buf = snapshot_bytes(&sample());
        for cut in [0, 7, 20, HEADER_BYTES, buf.len() - 1] {
            let err = read_snapshot(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::Snapshot(SnapshotError::Truncated { .. } | SnapshotError::BadMagic)
                ),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let mut buf = snapshot_bytes(&sample());
        let idx = HEADER_BYTES + 3;
        buf[idx] ^= 0x40;
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn lying_header_counts_are_structured_errors() {
        let mut buf = snapshot_bytes(&sample());
        // Claim an absurd node count: must fail as truncated/corrupt, not
        // attempt a giant allocation.
        buf[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::Snapshot(_)), "{err}");
    }
}
