//! Plain-text edge-list parsing and writing.
//!
//! The parser is chunked: the input bytes are split at line boundaries into
//! roughly [`DEFAULT_PARSE_CHUNK_BYTES`]-sized chunks, each chunk is
//! tokenised independently (in parallel on the `dkc-par` executor), and the
//! per-chunk results are merged **in chunk order**. Because every line
//! belongs to exactly one chunk and the merge preserves line order, the
//! parsed edge sequence — and therefore the dense relabelling, the final
//! CSR, and even the first reported parse error — is bit-identical to a
//! sequential parse for any thread count and any chunk size.
//!
//! Self-loops (`u u` lines) are legal input but never become edges: they
//! are skipped during the merge and *counted* in [`LoadStats::self_loops`],
//! so data-quality problems are visible instead of silently relying on the
//! CSR builder's dedup. A node that appears only in self-loops still
//! receives a dense id, exactly as before.
//!
//! ## The label-interning merge is parallel too
//!
//! Interning (label → dense id in first-occurrence order) was the last
//! sequential section of the parse. With more than one worker it now runs
//! as a deterministic sharded merge:
//!
//! 1. **local dedup** (parallel per chunk): each chunk's distinct labels
//!    in local first-occurrence order, pre-bucketed by label hash into
//!    shards;
//! 2. **shard merge** (parallel per shard): scanning chunks in input
//!    order, the first sighting of a label *is* its globally earliest
//!    `(chunk, local-rank)` position — shards are disjoint label sets, so
//!    no cross-shard coordination is needed;
//! 3. **id assignment** (sequential, but over *distinct labels*, not all
//!    pairs): sort the winners by position — exactly the sequential
//!    first-occurrence order — and build the label table;
//! 4. **translation** (parallel per chunk): map every pair through the
//!    frozen table, dropping and counting self-loops.
//!
//! The result is bit-identical to the sequential intern loop (which still
//! runs verbatim for single-threaded configurations) for any thread
//! count, chunk size and shard count — property-tested in
//! `tests/proptests.rs`.

use std::collections::{HashMap, HashSet};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::io::LoadedGraph;
use crate::{CsrGraph, Edge, GraphError, NodeId};
use dkc_par::{par_for_each_root, ParConfig};

/// Default byte size of one parse chunk. Small enough to fan out on
/// SNAP-scale files, large enough that chunk bookkeeping is noise.
pub const DEFAULT_PARSE_CHUNK_BYTES: usize = 1 << 20;

/// Default shard count of the parallel label-interning merge. Sharding is
/// a pure load-balancing knob: the result is identical for any value.
pub const DEFAULT_INTERN_SHARDS: usize = 64;

/// Statistics of one text parse, reported by `dkc stats` and the loaders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Total lines in the input (including comments and blanks).
    pub lines: usize,
    /// Comment (`%`, `#`, `//`) and blank lines skipped.
    pub comment_lines: usize,
    /// Edge records parsed (excluding self-loops, including duplicates).
    pub edge_records: usize,
    /// Self-loop records (`u u`) skipped with this counted warning.
    pub self_loops: usize,
    /// Worker threads the parallel tokenise phase actually used.
    pub parse_threads: usize,
}

impl std::fmt::Display for LoadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lines={} comments={} edges={} self-loops={} parse-threads={}",
            self.lines, self.comment_lines, self.edge_records, self.self_loops, self.parse_threads
        )
    }
}

/// One tokenised chunk: label pairs in line order, line accounting, and the
/// first parse error (with its chunk-local 1-based line number).
struct ChunkParse {
    pairs: Vec<(u64, u64)>,
    lines: usize,
    comments: usize,
    err: Option<(usize, String)>,
}

/// Splits `bytes` into chunks that end on line boundaries. Every byte
/// belongs to exactly one chunk; the split points depend only on
/// `chunk_bytes`, never on thread scheduling.
fn chunk_boundaries(bytes: &[u8], chunk_bytes: usize) -> Vec<(usize, usize)> {
    let chunk_bytes = chunk_bytes.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < bytes.len() {
        let mut end = (start + chunk_bytes).min(bytes.len());
        // Extend to the end of the current line.
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        chunks.push((start, end));
        start = end;
    }
    chunks
}

/// Tokenises one chunk. Stops at the first malformed line, like the
/// sequential parser does.
fn parse_chunk(chunk: &[u8]) -> ChunkParse {
    let mut out = ChunkParse { pairs: Vec::new(), lines: 0, comments: 0, err: None };
    // Manual line walk instead of `split(b'\n')`: a trailing newline must
    // not count as one extra (empty) input line.
    let mut pos = 0usize;
    while pos < chunk.len() {
        let end = chunk[pos..].iter().position(|&b| b == b'\n').map_or(chunk.len(), |i| pos + i);
        let line = &chunk[pos..end];
        out.lines += 1;
        match parse_line(line) {
            LineKind::Skip => out.comments += 1,
            LineKind::Pair(a, b) => out.pairs.push((a, b)),
            LineKind::Bad(message) => {
                out.err = Some((out.lines, message));
                return out;
            }
        }
        pos = end + 1;
    }
    out
}

enum LineKind {
    Skip,
    Pair(u64, u64),
    Bad(String),
}

fn parse_line(line: &[u8]) -> LineKind {
    let trimmed = trim_ascii(line);
    if trimmed.is_empty() || trimmed[0] == b'%' || trimmed[0] == b'#' || trimmed.starts_with(b"//")
    {
        return LineKind::Skip;
    }
    let mut tokens = trimmed.split(|b| b.is_ascii_whitespace()).filter(|t| !t.is_empty());
    let a = match parse_token(tokens.next()) {
        Ok(v) => v,
        Err(m) => return LineKind::Bad(m),
    };
    let b = match parse_token(tokens.next()) {
        Ok(v) => v,
        Err(m) => return LineKind::Bad(m),
    };
    // Any further columns (weights, timestamps) are ignored.
    LineKind::Pair(a, b)
}

fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if first.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = s {
        if last.is_ascii_whitespace() {
            s = rest;
        } else {
            break;
        }
    }
    s
}

fn parse_token(tok: Option<&[u8]>) -> Result<u64, String> {
    let tok = tok.ok_or_else(|| "expected two node tokens".to_string())?;
    let text = std::str::from_utf8(tok).map_err(|_| format!("invalid node id {tok:?}"))?;
    text.parse::<u64>().map_err(|_| format!("invalid node id {text:?}"))
}

/// Parses an edge list held in memory, tokenising chunks of
/// [`DEFAULT_PARSE_CHUNK_BYTES`] in parallel on `par`.
///
/// Deterministic: the result (and any error) is identical for every thread
/// count and chunk size — see the module docs.
pub fn parse_edge_list(
    bytes: &[u8],
    par: ParConfig,
) -> Result<(LoadedGraph, LoadStats), GraphError> {
    parse_edge_list_chunked(bytes, par, DEFAULT_PARSE_CHUNK_BYTES)
}

/// [`parse_edge_list`] with an explicit chunk byte size. Exposed so tests
/// can force many tiny chunks and property-check the determinism contract.
pub fn parse_edge_list_chunked(
    bytes: &[u8],
    par: ParConfig,
    chunk_bytes: usize,
) -> Result<(LoadedGraph, LoadStats), GraphError> {
    parse_edge_list_sharded(bytes, par, chunk_bytes, DEFAULT_INTERN_SHARDS)
}

/// [`parse_edge_list_chunked`] with an explicit intern-merge shard count.
/// Exposed so tests can property-check that the sharded merge is
/// bit-identical to the sequential intern path for any configuration.
pub fn parse_edge_list_sharded(
    bytes: &[u8],
    par: ParConfig,
    chunk_bytes: usize,
    intern_shards: usize,
) -> Result<(LoadedGraph, LoadStats), GraphError> {
    let chunks = chunk_boundaries(bytes, chunk_bytes);
    // One executor "root" per chunk; chunk-ordered output is the executor's
    // contract, so the merge below sees chunks in input order.
    let chunk_par = par.with_chunk(1);
    let parse_threads = chunk_par.effective_threads(chunks.len());
    let parsed: Vec<ChunkParse> = par_for_each_root(
        chunk_par,
        chunks.len(),
        || (),
        |_, c, out| {
            let (start, end) = chunks[c];
            out.push(parse_chunk(&bytes[start..end]));
        },
    );

    // Line accounting and earliest-error selection (sequential, cheap).
    let mut stats = LoadStats { parse_threads, ..LoadStats::default() };
    let mut total_pairs = 0usize;
    for chunk in &parsed {
        if let Some((local_line, message)) = &chunk.err {
            return Err(GraphError::Parse {
                line: stats.lines + local_line,
                message: message.clone(),
            });
        }
        stats.lines += chunk.lines;
        stats.comment_lines += chunk.comments;
        total_pairs += chunk.pairs.len();
    }

    let (labels, remap) = if par.threads <= 1 {
        intern_sequential(&parsed)
    } else {
        intern_sharded(&parsed, chunk_par, intern_shards)
    };

    // Translation: pairs → dense-id edges, dropping + counting self-loops.
    // Parallel per chunk over the frozen label table; chunk-ordered concat
    // reproduces the sequential edge order exactly.
    let translated: Vec<(Vec<Edge>, usize)> = par_for_each_root(
        chunk_par,
        parsed.len(),
        || (),
        |_, c, out| {
            let chunk = &parsed[c];
            let mut edges: Vec<Edge> = Vec::with_capacity(chunk.pairs.len());
            let mut self_loops = 0usize;
            for &(a, b) in &chunk.pairs {
                let ia = remap[&a];
                let ib = remap[&b];
                if ia == ib {
                    self_loops += 1;
                } else {
                    edges.push((ia, ib));
                }
            }
            out.push((edges, self_loops));
        },
    );
    let mut edges: Vec<Edge> = Vec::with_capacity(total_pairs);
    for (chunk_edges, self_loops) in translated {
        stats.self_loops += self_loops;
        stats.edge_records += chunk_edges.len();
        edges.extend(chunk_edges);
    }
    let graph = CsrGraph::from_edges(labels.len(), edges)?;
    Ok((LoadedGraph::from_parts(graph, labels, remap), stats))
}

/// The reference intern path: one pass over all pairs in input order.
fn intern_sequential(parsed: &[ChunkParse]) -> (Vec<u64>, HashMap<u64, NodeId>) {
    let mut remap: HashMap<u64, NodeId> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    for chunk in parsed {
        for &(a, b) in &chunk.pairs {
            for label in [a, b] {
                remap.entry(label).or_insert_with(|| {
                    let id = labels.len() as NodeId;
                    labels.push(label);
                    id
                });
            }
        }
    }
    (labels, remap)
}

/// The parallel intern path: deterministic sharded first-occurrence merge
/// (see the module docs). Bit-identical to [`intern_sequential`] for any
/// thread/chunk/shard configuration.
fn intern_sharded(
    parsed: &[ChunkParse],
    chunk_par: ParConfig,
    intern_shards: usize,
) -> (Vec<u64>, HashMap<u64, NodeId>) {
    let shards = intern_shards.max(1);
    // Phase 1 (parallel per chunk): distinct labels in local
    // first-occurrence order, pre-bucketed by label hash. The local rank
    // (index in the chunk's distinct sequence) is the tie-breaker that
    // preserves in-chunk ordering downstream.
    let buckets: Vec<Vec<Vec<(u64, u32)>>> =
        par_for_each_root(chunk_par, parsed.len(), HashSet::<u64>::new, |seen, c, out| {
            seen.clear();
            let mut shard_lists: Vec<Vec<(u64, u32)>> = vec![Vec::new(); shards];
            let mut rank = 0u32;
            for &(a, b) in &parsed[c].pairs {
                for label in [a, b] {
                    if seen.insert(label) {
                        shard_lists[shard_of(label, shards)].push((label, rank));
                        rank += 1;
                    }
                }
            }
            out.push(shard_lists);
        });
    // Phase 2 (parallel per shard): scanning chunks in input order, the
    // first sighting of a label is its earliest (chunk, rank) position —
    // the winner. Shards partition the label space, so shard workers never
    // contend.
    let winners: Vec<Vec<(u32, u32, u64)>> =
        par_for_each_root(chunk_par.with_chunk(1), shards, HashSet::<u64>::new, |seen, s, out| {
            seen.clear();
            let mut shard_winners: Vec<(u32, u32, u64)> = Vec::new();
            for (chunk_idx, chunk_buckets) in buckets.iter().enumerate() {
                for &(label, rank) in &chunk_buckets[s] {
                    if seen.insert(label) {
                        shard_winners.push((chunk_idx as u32, rank, label));
                    }
                }
            }
            out.push(shard_winners);
        });
    // Phase 3 (sequential over distinct labels only): global id order is
    // first-occurrence position order.
    let mut ordered: Vec<(u32, u32, u64)> = winners.into_iter().flatten().collect();
    ordered.sort_unstable();
    let mut labels: Vec<u64> = Vec::with_capacity(ordered.len());
    let mut remap: HashMap<u64, NodeId> = HashMap::with_capacity(ordered.len());
    for (_, _, label) in ordered {
        remap.insert(label, labels.len() as NodeId);
        labels.push(label);
    }
    (labels, remap)
}

/// FNV-1a-based shard assignment (any deterministic function works — the
/// final position sort erases the sharding).
fn shard_of(label: u64, shards: usize) -> usize {
    let mut h = 0xcbf29ce484222325u64;
    for byte in label.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

/// Reads an edge list from any reader (sequential parse). See
/// [`read_edge_list`].
pub fn read_edge_list_from<R: Read>(mut reader: R) -> Result<LoadedGraph, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    Ok(parse_edge_list(&bytes, ParConfig::sequential())?.0)
}

/// Reads a KONECT-style edge list file (sequential parse).
///
/// * blank lines and lines starting with `%`, `#` or `//` are skipped;
/// * the first two whitespace-separated integer tokens of each line are the
///   endpoints; extra columns are ignored;
/// * self-loops are skipped (see [`LoadStats::self_loops`]);
/// * node labels may be arbitrary `u64`s — they are remapped to dense ids.
///
/// For large files prefer [`read_edge_list_parallel`], which also returns
/// the parse statistics.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    let bytes = std::fs::read(path)?;
    Ok(parse_edge_list(&bytes, ParConfig::sequential())?.0)
}

/// Reads a KONECT-style edge list file, tokenising in parallel on `par`.
/// The result is bit-identical to [`read_edge_list`].
pub fn read_edge_list_parallel<P: AsRef<Path>>(
    path: P,
    par: ParConfig,
) -> Result<(LoadedGraph, LoadStats), GraphError> {
    let bytes = std::fs::read(path)?;
    parse_edge_list(&bytes, par)
}

/// Parses an edge list held in a string (convenience for tests and docs).
pub fn read_edge_list_str(text: &str) -> Result<LoadedGraph, GraphError> {
    Ok(parse_edge_list(text.as_bytes(), ParConfig::sequential())?.0)
}

/// Writes `g` as a plain edge list (`u v` per line, dense ids, `u < v`).
///
/// Degree-0 nodes have no edge to appear in, so they are encoded as
/// self-loop lines (`u u`) — the parser interns a self-loop's endpoint
/// without creating an edge, so write → read preserves the node set
/// exactly (the re-read counts them under [`LoadStats::self_loops`]).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.iter_edges() {
        writeln!(w, "{u} {v}")?;
    }
    for u in g.iter_nodes().filter(|&u| g.degree(u) == 0) {
        writeln!(w, "{u} {u}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a loaded graph as an edge list in its *original* labelling, so a
/// snapshot → text conversion round-trips the labels. Degree-0 nodes are
/// encoded as self-loop lines, as in [`write_edge_list`].
pub fn write_edge_list_labeled<W: Write>(
    loaded: &LoadedGraph,
    writer: W,
) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    let g = &loaded.graph;
    writeln!(w, "% {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.iter_edges() {
        writeln!(w, "{} {}", loaded.labels[u as usize], loaded.labels[v as usize])?;
    }
    for u in g.iter_nodes().filter(|&u| g.degree(u) == 0) {
        writeln!(w, "{} {}", loaded.labels[u as usize], loaded.labels[u as usize])?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to a file path. See [`write_edge_list`].
pub fn write_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_konect_style_input() {
        let text = "\
% sym unweighted
# another comment style
// and a third
1 2
2 3 1.5 1234567
3 1
";
        let loaded = read_edge_list_str(text).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.labels, vec![1, 2, 3]);
        assert_eq!(loaded.node_for_label(3), Some(2));
        assert_eq!(loaded.node_for_label(9), None);
    }

    #[test]
    fn sparse_labels_are_remapped_densely() {
        let loaded = read_edge_list_str("1000 7\n7 42\n").unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.labels, vec![1000, 7, 42]);
        // 1000-7 and 7-42 edges must exist under dense ids.
        let g = &loaded.graph;
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = read_edge_list_str("1 2\nfoo bar\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn malformed_line_position_is_chunking_invariant() {
        let text = "1 2\n2 3\n3 4\n4 5\nbad token\n5 6\n";
        for chunk_bytes in [1, 3, 5, 8, 1024] {
            for threads in [1, 4] {
                let err =
                    parse_edge_list_chunked(text.as_bytes(), ParConfig::new(threads), chunk_bytes)
                        .unwrap_err();
                match err {
                    GraphError::Parse { line, ref message } => {
                        assert_eq!(line, 5, "chunk_bytes={chunk_bytes} threads={threads}");
                        assert!(message.contains("bad"));
                    }
                    ref other => panic!("unexpected: {other}"),
                }
            }
        }
    }

    #[test]
    fn missing_second_token_is_an_error() {
        let err = read_edge_list_str("5\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let loaded = read_edge_list_str("1 2\n2 1\n1 2\n").unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn self_loops_are_skipped_and_counted() {
        let (loaded, stats) =
            parse_edge_list(b"7 7\n1 2\n7 7\n2 7\n", ParConfig::sequential()).unwrap();
        assert_eq!(stats.self_loops, 2);
        assert_eq!(stats.edge_records, 2);
        // Node 7 appears first in a self-loop: it still gets the first id.
        assert_eq!(loaded.labels, vec![7, 1, 2]);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert!(!loaded.graph.has_edge(0, 0));
    }

    #[test]
    fn stats_account_for_every_line() {
        let text = "% c\n\n1 2\n# c\n2 2\n2 3\n";
        let (_, stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        assert_eq!(stats.lines, 6);
        assert_eq!(stats.comment_lines, 3);
        assert_eq!(stats.edge_records, 2);
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.parse_threads, 1);
        assert!(stats.to_string().contains("self-loops=1"));
    }

    #[test]
    fn parallel_parse_is_chunking_and_thread_invariant() {
        let mut text = String::from("% header\n");
        for i in 0..500u64 {
            text.push_str(&format!("{} {}\n", i * 31 % 97, i * 17 % 89));
        }
        let (seq, seq_stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        for chunk_bytes in [1, 7, 64, 4096] {
            for threads in [2, 8] {
                let (par, par_stats) =
                    parse_edge_list_chunked(text.as_bytes(), ParConfig::new(threads), chunk_bytes)
                        .unwrap();
                assert_eq!(par.graph, seq.graph, "chunk_bytes={chunk_bytes} threads={threads}");
                assert_eq!(par.labels, seq.labels);
                assert_eq!(par_stats.self_loops, seq_stats.self_loops);
                assert_eq!(par_stats.lines, seq_stats.lines);
                assert_eq!(par_stats.edge_records, seq_stats.edge_records);
            }
        }
    }

    #[test]
    fn sharded_intern_merge_is_shard_count_invariant() {
        // Labels chosen to collide within shards and to appear first in
        // different chunks depending on the chunk size.
        let mut text = String::new();
        for i in 0..400u64 {
            text.push_str(&format!("{} {}\n", (i * 7919) % 101, (i * 104729) % 97 + 1000));
        }
        text.push_str("5000 5000\n"); // a self-loop-only node still gets an id
        let (seq, seq_stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        for shards in [1, 2, 3, 64, 1024] {
            for chunk_bytes in [1, 17, 4096] {
                let (par, par_stats) = parse_edge_list_sharded(
                    text.as_bytes(),
                    ParConfig::new(4),
                    chunk_bytes,
                    shards,
                )
                .unwrap();
                assert_eq!(par.labels, seq.labels, "shards={shards} chunk_bytes={chunk_bytes}");
                assert_eq!(par.graph, seq.graph);
                assert_eq!(par_stats.self_loops, seq_stats.self_loops);
                assert_eq!(par_stats.edge_records, seq_stats.edge_records);
            }
        }
    }

    #[test]
    fn no_trailing_newline_and_crlf_are_handled() {
        let loaded = read_edge_list_str("1 2\r\n2 3\r\n3 1").unwrap();
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.graph.num_nodes(), 3);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let loaded = read_edge_list_str(&text).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        assert_eq!(loaded.graph.num_nodes(), g.num_nodes());
    }

    #[test]
    fn isolated_nodes_survive_the_write_read_roundtrip() {
        // Node 3 has no edges and node 9 forces a tail of isolated nodes.
        let g = CsrGraph::from_edges(10, vec![(0, 1), (1, 2)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (back, stats) = parse_edge_list(&buf, ParConfig::sequential()).unwrap();
        assert_eq!(back.graph.num_nodes(), 10);
        assert_eq!(back.graph.num_edges(), 2);
        assert_eq!(stats.self_loops, 7, "one encoding line per isolated node (3..=9)");

        // Same through the labelled writer: labels of isolated nodes kept.
        let loaded = LoadedGraph::new(g, (100..110).collect());
        let mut buf = Vec::new();
        write_edge_list_labeled(&loaded, &mut buf).unwrap();
        let (back, _) = parse_edge_list(&buf, ParConfig::sequential()).unwrap();
        assert_eq!(back.graph.num_nodes(), 10);
        let mut labels = back.labels.clone();
        labels.sort_unstable();
        assert_eq!(labels, (100..110).collect::<Vec<u64>>());
    }

    #[test]
    fn labeled_write_preserves_original_labels() {
        let loaded = read_edge_list_str("100 200\n200 300\n").unwrap();
        let mut buf = Vec::new();
        write_edge_list_labeled(&loaded, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("100 200"));
        let again = read_edge_list_str(&text).unwrap();
        assert_eq!(again.labels, loaded.labels);
        assert_eq!(again.graph, loaded.graph);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let loaded = read_edge_list_str("% nothing here\n").unwrap();
        assert_eq!(loaded.graph.num_nodes(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
    }
}
