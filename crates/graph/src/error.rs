use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id that is out of the declared range.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A text edge list contained a line that could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Raw CSR arrays violated a structural invariant (offsets not
    /// monotone, neighbour lists unsorted/asymmetric, self-loops, …).
    InvalidCsr {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// A binary `.dkcsr` snapshot was rejected before any graph was built.
    Snapshot(SnapshotError),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

/// The ways a binary CSR snapshot can be rejected. Every variant is
/// detected *before* a graph is handed to the caller, so a corrupted cache
/// file can never produce a silently wrong graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the `.dkcsr` magic bytes.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
    },
    /// The file ended before the header-declared payload was complete.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload that was read.
        computed: u64,
    },
    /// A header field or section is internally inconsistent.
    Corrupt {
        /// Human-readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a .dkcsr snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: expected {expected} payload bytes, got {actual}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            SnapshotError::Corrupt { message } => write!(f, "snapshot corrupt: {message}"),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::InvalidCsr { message } => write!(f, "invalid CSR arrays: {message}"),
            GraphError::Snapshot(e) => write!(f, "{e}"),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for GraphError {
    fn from(e: SnapshotError) -> Self {
        GraphError::Snapshot(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 17, num_nodes: 5 };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn snapshot_errors_are_informative() {
        let e = GraphError::from(SnapshotError::UnsupportedVersion { found: 9 });
        assert!(e.to_string().contains("version 9"));
        let e = GraphError::from(SnapshotError::Truncated { expected: 100, actual: 7 });
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains('7'));
        let e = GraphError::from(SnapshotError::ChecksumMismatch { stored: 1, computed: 2 });
        assert!(e.to_string().contains("checksum"));
        let e = GraphError::InvalidCsr { message: "offsets not monotone".into() };
        assert!(e.to_string().contains("monotone"));
        assert!(GraphError::from(SnapshotError::BadMagic).to_string().contains("magic"));
    }

    #[test]
    fn io_error_wraps_source() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
