use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id that is out of the declared range.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A text edge list contained a line that could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 17, num_nodes: 5 };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_wraps_source() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
