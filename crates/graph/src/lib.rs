//! # dkc-graph — graph substrate for the disjoint k-clique toolkit
//!
//! This crate provides the in-memory graph representations every algorithm in
//! the workspace builds upon:
//!
//! * [`CsrGraph`] — an immutable, compressed-sparse-row undirected graph with
//!   sorted neighbour arrays. All static solvers (HG / GC / L / LP / OPT)
//!   operate on this representation.
//! * [`DynGraph`] — a mutable adjacency-list graph supporting edge insertion
//!   and deletion in `O(deg)`, used by the dynamic-maintenance crate
//!   (Section V of the paper).
//! * [`NodeOrder`] / [`OrderingKind`] — total node orderings (identity,
//!   degree, degeneracy, external score) used to orient the graph into a DAG.
//! * [`Dag`] — the directed acyclic orientation of a [`CsrGraph`] under a
//!   total order. Following Algorithm 1 of the paper, an edge points from the
//!   node with the *larger* order value to the node with the *smaller* one,
//!   i.e. `v ∈ N⁺(u)` implies `η(v) < η(u)`. Every k-clique is therefore
//!   enumerated exactly once, rooted at its highest-ranked member.
//! * [`io`] — layered graph ingestion: a chunked parallel text edge-list
//!   parser compatible with the KONECT / Network-Repository formats, a
//!   versioned checksummed binary CSR snapshot format (`.dkcsr`), and a
//!   format-detecting loader ([`io::load_graph`]).
//!
//! Node identifiers are dense `u32` values in `0..n`. The graph is simple:
//! self-loops are dropped and parallel edges de-duplicated at construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod components;
mod csr;
mod dag;
mod dynamic;
mod error;
pub mod io;
mod order;
mod partition;
mod stats;
mod subgraph;

pub use builder::GraphBuilder;
pub use components::{connected_components, Components};
pub use csr::CsrGraph;
pub use dag::Dag;
pub use dynamic::DynGraph;
pub use error::{GraphError, SnapshotError};
pub use order::{
    degeneracy_removal_order, greedy_coloring, NodeOrder, OrderingKind, ParseOrderingError,
};
pub use partition::{partition_shards, ShardPlan};
pub use stats::GraphStats;
pub use subgraph::InducedSubgraph;

/// Dense node identifier. Nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// An undirected edge. By convention stored with `0 <= e.0`, `e.1 < n`;
/// orientation of the tuple carries no meaning.
pub type Edge = (NodeId, NodeId);
