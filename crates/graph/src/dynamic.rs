use crate::{CsrGraph, Edge, NodeId};

/// A mutable undirected graph with sorted adjacency vectors.
///
/// This is the representation used by the dynamic-maintenance algorithms of
/// Section V: edge insertion and deletion cost `O(deg)` (shifting within the
/// per-node vector), adjacency queries cost `O(log deg)`, and neighbourhood
/// scans are contiguous. Real-world update streams (the paper cites ≥1% of
/// all edges per day in the Tencent MOBA graph) are far cheaper to absorb
/// here than by rebuilding a CSR image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynGraph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl DynGraph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DynGraph { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Clones a static [`CsrGraph`] into a mutable graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let adj = (0..g.num_nodes() as NodeId).map(|u| g.neighbors(u).to_vec()).collect();
        DynGraph { adj, num_edges: g.num_edges() }
    }

    /// Freezes the current state into a [`CsrGraph`].
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(self.num_nodes(), self.iter_edges().collect::<Vec<_>>())
            .expect("DynGraph invariants guarantee in-range edges")
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Grows the node set so that `u` is a valid id.
    pub fn ensure_node(&mut self, u: NodeId) {
        if u as usize >= self.adj.len() {
            self.adj.resize(u as usize + 1, Vec::new());
        }
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Sorted neighbour slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Adjacency test, `O(log deg)`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Inserts edge `(u, v)`. Returns `true` if the edge was new. Self-loops
    /// are rejected (returns `false`). Node ids beyond the current range grow
    /// the graph.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.ensure_node(u.max(v));
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency vectors out of sync");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes edge `(u, v)`. Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v =
                    self.adj[v as usize].binary_search(&u).expect("adjacency vectors out of sync");
                self.adj[v as usize].remove(pos_v);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// True when `nodes` are pairwise adjacent (i.e. form a clique).
    pub fn is_clique(&self, nodes: &[NodeId]) -> bool {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if !self.has_edge(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Sorted-merge count of common neighbours of `u` and `v`.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let (mut i, mut j, mut cnt) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cnt += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        cnt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut g = DynGraph::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(0, 1), "duplicate insert must be a no-op");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1), "double delete must be a no-op");
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = DynGraph::new(2);
        assert!(!g.insert_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DynGraph::new(0);
        assert!(g.insert_edge(3, 7));
        assert_eq!(g.num_nodes(), 8);
        assert!(g.has_edge(7, 3));
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn csr_roundtrip_preserves_structure() {
        let csr = CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let dyn_g = DynGraph::from_csr(&csr);
        assert_eq!(dyn_g.num_edges(), 5);
        let back = dyn_g.to_csr();
        assert_eq!(back, csr);
    }

    #[test]
    fn neighbors_stay_sorted_under_churn() {
        let mut g = DynGraph::new(6);
        for v in [5, 1, 3, 2, 4] {
            g.insert_edge(0, v);
        }
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        g.remove_edge(0, 3);
        assert_eq!(g.neighbors(0), &[1, 2, 4, 5]);
        g.insert_edge(0, 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let mut g = DynGraph::new(4);
        for (a, b) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            g.insert_edge(a, b);
        }
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 2, 3]));
        assert!(g.is_clique(&[2, 3]));
        assert!(g.is_clique(&[1])); // trivially
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let mut g = DynGraph::new(4);
        g.insert_edge(2, 0);
        g.insert_edge(3, 1);
        let edges: Vec<Edge> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn out_of_range_queries_are_safe() {
        let g = DynGraph::new(2);
        assert!(!g.has_edge(0, 99));
        let mut g = g;
        assert!(!g.remove_edge(0, 99));
    }
}
