use crate::{CsrGraph, DynGraph, NodeId};

/// A subgraph induced on a node subset, with local↔global id translation.
///
/// Used by the dynamic algorithms (Algorithm 5 builds candidate cliques on
/// the set `B = C ∪ N_F(C)`) and by the OPT pipeline when decomposing work.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: CsrGraph,
    /// `global[local]` is the original node id; sorted ascending so that the
    /// inverse mapping is a binary search.
    global: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Induces on `nodes` (duplicates are removed) of a static graph.
    pub fn of_csr(g: &CsrGraph, nodes: &[NodeId]) -> Self {
        let global = normalize(nodes);
        let edges = induced_edges(&global, |u| g.neighbors(u));
        let graph =
            CsrGraph::from_edges(global.len(), edges).expect("local ids are dense by construction");
        InducedSubgraph { graph, global }
    }

    /// Induces on `nodes` of a dynamic graph snapshot.
    pub fn of_dyn(g: &DynGraph, nodes: &[NodeId]) -> Self {
        let global = normalize(nodes);
        let edges = induced_edges(&global, |u| g.neighbors(u));
        let graph =
            CsrGraph::from_edges(global.len(), edges).expect("local ids are dense by construction");
        InducedSubgraph { graph, global }
    }

    /// The local graph on `0..len` ids.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of nodes in the subgraph.
    #[inline]
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True when induced on an empty set.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// Translates a local id back to the original graph.
    #[inline]
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.global[local as usize]
    }

    /// Translates an original id to the local id, if the node is included.
    #[inline]
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.global.binary_search(&global).ok().map(|i| i as NodeId)
    }

    /// Translates a slice of local ids to global ids.
    pub fn to_global_vec(&self, locals: &[NodeId]) -> Vec<NodeId> {
        locals.iter().map(|&l| self.to_global(l)).collect()
    }
}

fn normalize(nodes: &[NodeId]) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

fn induced_edges<'a, F>(global: &'a [NodeId], neighbors: F) -> Vec<(NodeId, NodeId)>
where
    F: Fn(NodeId) -> &'a [NodeId],
{
    let mut edges = Vec::new();
    for (lu, &gu) in global.iter().enumerate() {
        // Both lists are sorted: walk the neighbour list against `global`.
        for &gv in neighbors(gu) {
            if gv <= gu {
                continue; // count each edge once, from the smaller endpoint
            }
            if let Ok(lv) = global.binary_search(&gv) {
                edges.push((lu as NodeId, lv as NodeId));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // Two triangles sharing node 2: {0,1,2} and {2,3,4}; plus isolated 5.
        CsrGraph::from_edges(6, vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]).unwrap()
    }

    #[test]
    fn induces_correct_edges() {
        let g = sample();
        let sub = InducedSubgraph::of_csr(&g, &[2, 3, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.graph().num_edges(), 3); // full triangle
        let sub2 = InducedSubgraph::of_csr(&g, &[0, 3, 4]);
        assert_eq!(sub2.graph().num_edges(), 1); // only 3-4 survives
    }

    #[test]
    fn id_translation_roundtrips() {
        let g = sample();
        let sub = InducedSubgraph::of_csr(&g, &[4, 0, 2]);
        for local in 0..sub.len() as NodeId {
            let global = sub.to_global(local);
            assert_eq!(sub.to_local(global), Some(local));
        }
        assert_eq!(sub.to_local(5), None);
        assert_eq!(sub.to_global_vec(&[0, 1, 2]), vec![0, 2, 4]);
    }

    #[test]
    fn duplicates_in_node_set_are_ignored() {
        let g = sample();
        let sub = InducedSubgraph::of_csr(&g, &[1, 1, 2, 2, 0]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.graph().num_edges(), 3);
    }

    #[test]
    fn dyn_graph_induction_matches_csr() {
        let g = sample();
        let dg = DynGraph::from_csr(&g);
        let a = InducedSubgraph::of_csr(&g, &[0, 1, 2, 3]);
        let b = InducedSubgraph::of_dyn(&dg, &[0, 1, 2, 3]);
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn empty_induction() {
        let g = sample();
        let sub = InducedSubgraph::of_csr(&g, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph().num_nodes(), 0);
    }
}
