use crate::order::degeneracy_removal_order;
use crate::CsrGraph;

/// Summary statistics of a graph, as reported in the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Maximum degree `d`.
    pub max_degree: usize,
    /// Average degree `2m / n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Graph degeneracy (maximum core number).
    pub degeneracy: usize,
}

impl GraphStats {
    /// Computes all statistics in `O(n + m)`.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let avg = if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 };
        let (_, degeneracy) = degeneracy_removal_order(g);
        GraphStats {
            num_nodes: n,
            num_edges: m,
            max_degree: g.max_degree(),
            avg_degree: avg,
            degeneracy,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} max_deg={} avg_deg={:.2} degeneracy={}",
            self.num_nodes, self.num_edges, self.max_degree, self.avg_degree, self.degeneracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_k4() {
        let g =
            CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 3.0).abs() < 1e-12);
        assert_eq!(s.degeneracy, 3);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&CsrGraph::empty());
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.degeneracy, 0);
    }

    #[test]
    fn display_contains_all_fields() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        let text = GraphStats::of(&g).to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("m=2"));
        assert!(text.contains("degeneracy=1"));
    }
}
