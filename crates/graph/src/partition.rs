//! Deterministic shard partitioning for the serving tier.
//!
//! A [`ShardPlan`] assigns every node of a [`CsrGraph`] to one of `S` shards.
//! The partitioner works in two stages:
//!
//! 1. **Components first.** Connected components never share a k-clique, so
//!    packing whole components onto shards forfeits nothing. Components are
//!    bin-packed by degree sum (largest first) onto the least-loaded shard —
//!    a deterministic greedy that balances *work*, not node counts, because
//!    apply/solve cost tracks edges.
//! 2. **Seeded degree-balanced refinement.** A component whose degree sum
//!    exceeds the balanced share (`ceil(2m / S)`) — in social graphs, the
//!    giant component — is split across shards by a linear deterministic
//!    greedy: nodes are visited in BFS order from a seeded start node and
//!    each is placed on the shard holding most of its already-placed
//!    neighbours, discounted by the shard's remaining degree capacity.
//!
//! Edges whose endpoints land on different shards are **cut**: a sharded
//! deployment drops them, so any clique using a cut edge is forfeited. The
//! plan reports every cut edge explicitly so operators can see exactly what
//! disjointness the partition gives up (`|S|` can shrink by at most one
//! group per cut edge). Component-pure plans (`cut_edges.is_empty()`)
//! forfeit nothing and reproduce the unsharded solution byte-for-byte.

use crate::components::connected_components;
use crate::csr::CsrGraph;
use crate::{Edge, NodeId};

/// A deterministic node → shard assignment with an explicit cut-edge report.
///
/// Produced by [`partition_shards`]; consumed by the serving router (update
/// routing, fan-out merging) and by `loadgen`'s multi-shard mode (per-shard
/// node pools keep benchmark op streams intra-shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    assign: Vec<u32>,
    shard_nodes: Vec<usize>,
    shard_degree: Vec<u64>,
    cut_edges: Vec<Edge>,
    split_components: usize,
}

impl ShardPlan {
    /// Number of shards the plan was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard owning node `u`. Nodes beyond the planned id space (appended
    /// after partitioning) hash to `u % shards` so routing stays total.
    pub fn shard_of(&self, u: NodeId) -> usize {
        match self.assign.get(u as usize) {
            Some(&s) => s as usize,
            None => u as usize % self.shards,
        }
    }

    /// The full node → shard assignment (length = planned node count).
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Node count per shard.
    pub fn shard_nodes(&self) -> &[usize] {
        &self.shard_nodes
    }

    /// Degree sum per shard (before cut edges are dropped).
    pub fn shard_degree(&self) -> &[u64] {
        &self.shard_degree
    }

    /// Every edge whose endpoints landed on different shards, in canonical
    /// `(min, max)` lexicographic order.
    pub fn cut_edges(&self) -> &[Edge] {
        &self.cut_edges
    }

    /// `true` when no edge is cut — every component landed whole on one
    /// shard, so the sharded solution equals the unsharded one.
    pub fn is_pure(&self) -> bool {
        self.cut_edges.is_empty()
    }

    /// Number of connected components the refinement stage had to split.
    pub fn split_components(&self) -> usize {
        self.split_components
    }

    /// Nodes assigned to shard `s`, ascending.
    pub fn members(&self, s: usize) -> Vec<NodeId> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a as usize == s)
            .map(|(u, _)| u as NodeId)
            .collect()
    }

    /// Per-shard node pools — `members(s)` for every shard. Loadgen's
    /// multi-shard mode draws update endpoints within one pool so the op
    /// stream applies identically on 1-shard and N-shard deployments.
    pub fn node_pools(&self) -> Vec<Vec<NodeId>> {
        let mut pools = vec![Vec::new(); self.shards];
        for (u, &s) in self.assign.iter().enumerate() {
            pools[s as usize].push(u as NodeId);
        }
        pools
    }

    /// The intra-shard edges of shard `s`, in `g`'s edge order.
    pub fn shard_edges(&self, g: &CsrGraph, s: usize) -> Vec<Edge> {
        g.iter_edges().filter(|&(u, v)| self.shard_of(u) == s && self.shard_of(v) == s).collect()
    }

    /// Builds shard `s`'s subgraph on the **full** node-id space: every node
    /// of `g` exists on every shard, but only shard-local edges are present.
    /// Keeping global ids makes routing a flat lookup and lets merged
    /// solutions concatenate without id translation.
    pub fn shard_graph(&self, g: &CsrGraph, s: usize) -> CsrGraph {
        CsrGraph::from_edges(g.num_nodes(), self.shard_edges(g, s))
            .expect("shard edges come from a valid graph")
    }

    /// Reconstructs a plan from persisted parts — the restart path: a
    /// deployment must reuse the exact assignment it was created with, not
    /// re-partition the (since mutated) graph. Node counts are recomputed
    /// from the assignment; per-shard degree sums are not persisted and
    /// read as zero.
    pub fn from_parts(
        shards: usize,
        assign: Vec<u32>,
        cut_edges: Vec<Edge>,
        split_components: usize,
    ) -> ShardPlan {
        let shards = shards.max(1);
        let mut shard_nodes = vec![0usize; shards];
        for &s in &assign {
            shard_nodes[(s as usize).min(shards - 1)] += 1;
        }
        ShardPlan {
            shards,
            assign,
            shard_nodes,
            shard_degree: vec![0; shards],
            cut_edges,
            split_components,
        }
    }

    /// One-line operator summary: per-shard load and the cut report.
    pub fn summary(&self) -> String {
        let loads: Vec<String> = (0..self.shards)
            .map(|s| format!("s{s}:{}n/{}d", self.shard_nodes[s], self.shard_degree[s]))
            .collect();
        format!(
            "{} shards [{}] cut_edges={} split_components={}",
            self.shards,
            loads.join(" "),
            self.cut_edges.len(),
            self.split_components
        )
    }
}

/// Partitions `g` into `shards` parts: whole connected components first,
/// then a seeded degree-balanced split of any component larger than the
/// balanced share. Deterministic for a fixed `(g, shards, seed)`.
///
/// `seed` only influences the BFS start node of the refinement stage, so
/// component-pure plans are identical for every seed.
pub fn partition_shards(g: &CsrGraph, shards: usize, seed: u64) -> ShardPlan {
    let n = g.num_nodes();
    let shards = shards.max(1);
    let mut plan = ShardPlan {
        shards,
        assign: vec![0u32; n],
        shard_nodes: vec![0; shards],
        shard_degree: vec![0; shards],
        cut_edges: Vec::new(),
        split_components: 0,
    };
    if n == 0 {
        return plan;
    }
    if shards == 1 {
        plan.shard_nodes[0] = n;
        plan.shard_degree[0] = 2 * g.num_edges() as u64;
        return plan;
    }

    let comps = connected_components(g);
    let ncomp = comps.count();
    let mut comp_degree = vec![0u64; ncomp];
    for u in 0..n {
        comp_degree[comps.label[u] as usize] += g.degree(u as NodeId) as u64;
    }
    let total_degree: u64 = comp_degree.iter().sum();
    // Balanced share of work per shard; components above it get split.
    let target = total_degree.div_ceil(shards as u64).max(1);

    // Largest-first greedy bin packing of whole components; ties broken by
    // component id, shard ties by lowest index — fully deterministic.
    let mut order: Vec<usize> = (0..ncomp).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(comp_degree[c]), c));
    let mut oversized = Vec::new();
    for c in order {
        if comp_degree[c] > target {
            oversized.push(c);
            continue;
        }
        let s = least_loaded(&plan.shard_degree);
        for u in comps.members(c as u32) {
            plan.assign[u as usize] = s as u32;
        }
        plan.shard_degree[s] += comp_degree[c];
    }
    for c in oversized {
        split_component(g, &comps.members(c as u32), target, seed, &mut plan);
        plan.split_components += 1;
    }

    for &s in &plan.assign {
        plan.shard_nodes[s as usize] += 1;
    }
    plan.cut_edges = g
        .iter_edges()
        .filter(|&(u, v)| plan.assign[u as usize] != plan.assign[v as usize])
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    plan.cut_edges.sort_unstable();
    plan
}

fn least_loaded(load: &[u64]) -> usize {
    let mut best = 0;
    for (s, &d) in load.iter().enumerate() {
        if d < load[best] {
            best = s;
        }
    }
    best
}

/// Splits one oversized component across all shards with a linear
/// deterministic greedy (Stanton & Kleinberg's LDG, made deterministic):
/// nodes arrive in BFS order from a seeded start and go to the shard
/// maximising `(placed neighbours + 1) × remaining degree capacity`.
/// The affinity term keeps cliques together (few cut edges); the capacity
/// term keeps degree sums balanced.
fn split_component(g: &CsrGraph, members: &[NodeId], target: u64, seed: u64, plan: &mut ShardPlan) {
    // Seeded, deterministic BFS start within the component.
    let start = members[(seed % members.len() as u64) as usize];
    let mut placed: Vec<Option<u32>> = vec![None; g.num_nodes()];
    let mut in_comp = vec![false; g.num_nodes()];
    for &u in members {
        in_comp[u as usize] = true;
    }
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; g.num_nodes()];
    queue.push_back(start);
    seen[start as usize] = true;
    let mut visited = 0usize;
    while visited < members.len() {
        let u = match queue.pop_front() {
            Some(u) => u,
            // The component is connected, so this only guards degenerate
            // inputs; fall back to the smallest unvisited member.
            None => {
                let u = *members.iter().find(|&&m| !seen[m as usize]).expect("unvisited member");
                seen[u as usize] = true;
                u
            }
        };
        visited += 1;
        let mut best = 0usize;
        let mut best_score = (0u128, std::cmp::Reverse(u64::MAX));
        for s in 0..plan.shards {
            let affinity = 1 + g
                .neighbors(u)
                .iter()
                .filter(|&&v| placed[v as usize] == Some(s as u32))
                .count() as u128;
            let capacity = target.saturating_sub(plan.shard_degree[s]).saturating_add(1);
            let score = (affinity * capacity as u128, std::cmp::Reverse(plan.shard_degree[s]));
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        placed[u as usize] = Some(best as u32);
        plan.assign[u as usize] = best as u32;
        plan.shard_degree[best] += g.degree(u) as u64;
        for &v in g.neighbors(u) {
            if in_comp[v as usize] && !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, edges.to_vec()).unwrap()
    }

    #[test]
    fn single_shard_is_trivial() {
        let g = path(&[(0, 1), (1, 2)], 3);
        let plan = partition_shards(&g, 1, 7);
        assert!(plan.is_pure());
        assert_eq!(plan.assignment(), &[0, 0, 0]);
        assert_eq!(plan.shard_nodes(), &[3]);
    }

    #[test]
    fn components_pack_whole_when_balanced() {
        // Two triangles (disjoint components) across two shards: pure.
        let g = path(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], 6);
        let plan = partition_shards(&g, 2, 0);
        assert!(plan.is_pure(), "{}", plan.summary());
        assert_eq!(plan.split_components(), 0);
        assert_ne!(plan.shard_of(0), plan.shard_of(3));
        assert_eq!(plan.shard_of(0), plan.shard_of(2));
        assert_eq!(plan.shard_of(3), plan.shard_of(5));
    }

    #[test]
    fn giant_component_splits_with_cut_report() {
        // One path on 12 nodes — must split, and every cut edge reported.
        let edges: Vec<(u32, u32)> = (0..11).map(|i| (i, i + 1)).collect();
        let g = path(&edges, 12);
        let plan = partition_shards(&g, 2, 42);
        assert_eq!(plan.split_components(), 1);
        assert!(!plan.is_pure());
        for &(u, v) in plan.cut_edges() {
            assert_ne!(plan.shard_of(u), plan.shard_of(v));
            assert!(u < v);
        }
        let recount = g.iter_edges().filter(|&(u, v)| plan.shard_of(u) != plan.shard_of(v)).count();
        assert_eq!(recount, plan.cut_edges().len());
        assert!(plan.shard_nodes().iter().all(|&c| c > 0), "{}", plan.summary());
    }

    #[test]
    fn deterministic_for_fixed_seed_and_seed_only_moves_split() {
        let edges: Vec<(u32, u32)> = (0..20).flat_map(|i| [(i, (i + 1) % 21), (i, 20)]).collect();
        let g = path(&edges, 21);
        let a = partition_shards(&g, 3, 5);
        let b = partition_shards(&g, 3, 5);
        assert_eq!(a, b);
        // Pure plans ignore the seed entirely.
        let g2 = path(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], 6);
        assert_eq!(partition_shards(&g2, 2, 1), partition_shards(&g2, 2, 999));
    }

    #[test]
    fn shard_graph_keeps_global_ids_and_local_edges() {
        let g = path(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], 6);
        let plan = partition_shards(&g, 2, 0);
        let s0 = plan.shard_graph(&g, plan.shard_of(0));
        assert_eq!(s0.num_nodes(), 6, "full id space retained");
        assert_eq!(s0.num_edges(), 3);
        assert_eq!(s0.degree(3), if plan.shard_of(3) == plan.shard_of(0) { 2 } else { 0 });
    }

    #[test]
    fn node_pools_partition_the_id_space() {
        let edges: Vec<(u32, u32)> = (0..11).map(|i| (i, i + 1)).collect();
        let g = path(&edges, 12);
        let plan = partition_shards(&g, 3, 9);
        let pools = plan.node_pools();
        let mut all: Vec<u32> = pools.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        for (s, pool) in pools.iter().enumerate() {
            for &u in pool {
                assert_eq!(plan.shard_of(u), s);
            }
        }
    }

    #[test]
    fn from_parts_reconstructs_routing() {
        let edges: Vec<(u32, u32)> = (0..11).map(|i| (i, i + 1)).collect();
        let g = path(&edges, 12);
        let plan = partition_shards(&g, 3, 9);
        let back = ShardPlan::from_parts(
            plan.shards(),
            plan.assignment().to_vec(),
            plan.cut_edges().to_vec(),
            plan.split_components(),
        );
        assert_eq!(back.assignment(), plan.assignment());
        assert_eq!(back.shard_nodes(), plan.shard_nodes());
        assert_eq!(back.cut_edges(), plan.cut_edges());
        assert_eq!(back.split_components(), plan.split_components());
        for u in 0..20u32 {
            assert_eq!(back.shard_of(u), plan.shard_of(u));
        }
    }

    #[test]
    fn out_of_plan_nodes_route_by_modulus() {
        let g = path(&[(0, 1)], 2);
        let plan = partition_shards(&g, 2, 0);
        assert_eq!(plan.shard_of(100), 0);
        assert_eq!(plan.shard_of(101), 1);
    }
}
