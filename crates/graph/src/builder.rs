use crate::{CsrGraph, Edge, GraphError, NodeId};

/// Incremental accumulator for building a [`CsrGraph`].
///
/// Useful when edges arrive from a generator or parser and the final node
/// count is not known upfront: the builder tracks the maximum node id seen
/// and sizes the graph accordingly (or to an explicit [`GraphBuilder::with_nodes`]
/// lower bound).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for roughly `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder { edges: Vec::with_capacity(m), min_nodes: 0 }
    }

    /// Declares that the graph has at least `n` nodes even if no edge touches
    /// the high ids (isolated trailing nodes).
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Adds one undirected edge.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Number of edge records accumulated so far (before de-duplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises into a [`CsrGraph`]. The node count is
    /// `max(min_nodes, 1 + max node id seen)`.
    pub fn build(self) -> Result<CsrGraph, GraphError> {
        let n_from_edges =
            self.edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(0);
        let n = self.min_nodes.max(n_from_edges);
        CsrGraph::from_edges(n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_scattered_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 1).add_edge(0, 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(3), &[0, 1]);
    }

    #[test]
    fn with_nodes_reserves_isolated_tail() {
        let mut b = GraphBuilder::new().with_nodes(10);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_gives_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert!(GraphBuilder::new().is_empty());
    }

    #[test]
    fn extend_edges_accumulates() {
        let mut b = GraphBuilder::with_capacity(4);
        b.extend_edges(vec![(0, 1), (1, 2)]);
        b.extend_edges(vec![(2, 3)]);
        assert_eq!(b.len(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }
}
