//! Plain-text edge-list I/O.
//!
//! The paper's datasets come from KONECT and the Network Repository, which
//! ship whitespace-separated edge lists with `%` / `#` comment headers and
//! optional weight/timestamp columns. [`read_edge_list`] accepts that format,
//! remaps arbitrary (possibly sparse, 1-based) node labels onto dense
//! `0..n` ids, and returns the mapping so results can be reported in the
//! original labelling.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{CsrGraph, GraphBuilder, GraphError, NodeId};

/// Result of loading an edge list: the graph plus the original node labels.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The dense, simple graph.
    pub graph: CsrGraph,
    /// `labels[u]` is the label the input file used for dense node `u`.
    pub labels: Vec<u64>,
}

impl LoadedGraph {
    /// Looks up the dense id of an original label (linear scan; intended for
    /// tests and small interactive use).
    pub fn node_for_label(&self, label: u64) -> Option<NodeId> {
        self.labels.iter().position(|&l| l == label).map(|i| i as NodeId)
    }
}

/// Reads an edge list from any reader. See [`read_edge_list`].
pub fn read_edge_list_from<R: Read>(reader: R) -> Result<LoadedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, NodeId> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new();
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    let mut reader = reader;
    loop {
        line_buf.clear();
        let read = reader.read_line(&mut line_buf)?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty()
            || line.starts_with('%')
            || line.starts_with('#')
            || line.starts_with("//")
        {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let a = parse_token(tokens.next(), line_no)?;
        let b = parse_token(tokens.next(), line_no)?;
        // Any further columns (weights, timestamps) are ignored.
        let ia = intern(a, &mut remap, &mut labels);
        let ib = intern(b, &mut remap, &mut labels);
        builder.add_edge(ia, ib);
    }
    let graph = builder.with_nodes(labels.len()).build()?;
    Ok(LoadedGraph { graph, labels })
}

/// Reads a KONECT-style edge list file.
///
/// * blank lines and lines starting with `%`, `#` or `//` are skipped;
/// * the first two whitespace-separated integer tokens of each line are the
///   endpoints; extra columns are ignored;
/// * node labels may be arbitrary `u64`s — they are remapped to dense ids.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list_from(file)
}

/// Parses an edge list held in a string (convenience for tests and docs).
pub fn read_edge_list_str(text: &str) -> Result<LoadedGraph, GraphError> {
    read_edge_list_from(text.as_bytes())
}

/// Writes `g` as a plain edge list (`u v` per line, dense ids, `u < v`).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.iter_edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to a file path. See [`write_edge_list`].
pub fn write_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

fn parse_token(tok: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let tok =
        tok.ok_or_else(|| GraphError::Parse { line, message: "expected two node tokens".into() })?;
    tok.parse::<u64>()
        .map_err(|_| GraphError::Parse { line, message: format!("invalid node id {tok:?}") })
}

fn intern(label: u64, remap: &mut HashMap<u64, NodeId>, labels: &mut Vec<u64>) -> NodeId {
    *remap.entry(label).or_insert_with(|| {
        let id = labels.len() as NodeId;
        labels.push(label);
        id
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_konect_style_input() {
        let text = "\
% sym unweighted
# another comment style
// and a third
1 2
2 3 1.5 1234567
3 1
";
        let loaded = read_edge_list_str(text).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.labels, vec![1, 2, 3]);
        assert_eq!(loaded.node_for_label(3), Some(2));
        assert_eq!(loaded.node_for_label(9), None);
    }

    #[test]
    fn sparse_labels_are_remapped_densely() {
        let loaded = read_edge_list_str("1000 7\n7 42\n").unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.labels, vec![1000, 7, 42]);
        // 1000-7 and 7-42 edges must exist under dense ids.
        let g = &loaded.graph;
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = read_edge_list_str("1 2\nfoo bar\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn missing_second_token_is_an_error() {
        let err = read_edge_list_str("5\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let loaded = read_edge_list_str("1 2\n2 1\n1 2\n").unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let loaded = read_edge_list_str(&text).unwrap();
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        assert_eq!(loaded.graph.num_nodes(), g.num_nodes());
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let loaded = read_edge_list_str("% nothing here\n").unwrap();
        assert_eq!(loaded.graph.num_nodes(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
    }
}
