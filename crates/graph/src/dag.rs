use crate::{CsrGraph, NodeId, NodeOrder};

/// A directed acyclic orientation of a [`CsrGraph`] under a total order.
///
/// Following Algorithm 1 of the paper: node `u` points to neighbour `v` iff
/// `η(v) < η(u)`, so `N⁺(u)` is the set of *lower-ranked* neighbours. Every
/// k-clique of the underlying graph appears exactly once as
/// `{u} ∪ K` with `K ⊆ N⁺(u)` where `u` is the clique's highest-ranked
/// member — the standard trick that de-duplicates clique enumeration.
///
/// Out-neighbour lists are sorted by node id so set intersections run as
/// linear merges.
#[derive(Debug, Clone)]
pub struct Dag {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    order: NodeOrder,
}

impl Dag {
    /// Orients `g` according to `order`.
    pub fn from_graph(g: &CsrGraph, order: NodeOrder) -> Self {
        let n = g.num_nodes();
        assert_eq!(order.len(), n, "order must cover every node");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(g.num_edges());
        for u in 0..n as NodeId {
            let ru = order.rank(u);
            // Neighbour lists are id-sorted already; filtering preserves that.
            targets.extend(g.neighbors(u).iter().copied().filter(|&v| order.rank(v) < ru));
            offsets.push(targets.len());
        }
        Dag { offsets, targets, order }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Out-neighbours of `u` (lower-ranked neighbours), sorted by node id.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The total order used for the orientation.
    #[inline]
    pub fn order(&self) -> &NodeOrder {
        &self.order
    }

    /// Rank of node `u` under the orientation order.
    #[inline]
    pub fn rank(&self, u: NodeId) -> u32 {
        self.order.rank(u)
    }

    /// Maximum out-degree — with a degeneracy order this equals at most the
    /// graph's degeneracy, which bounds clique-listing work.
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId).map(|u| self.out_degree(u)).max().unwrap_or(0)
    }

    /// Directed adjacency test (`v ∈ N⁺(u)`), `O(log out_degree)`.
    #[inline]
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Total number of arcs (equals the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderingKind;

    /// The 9-node, 15-edge graph of the paper's Fig. 2 (nodes renumbered
    /// v1..v9 → 0..8). Its seven 3-cliques are C1..C7 of Example 1.
    pub(crate) fn paper_fig2_graph() -> CsrGraph {
        let edges = vec![
            (0, 2), // v1-v3
            (0, 5), // v1-v6
            (2, 5), // v3-v6
            (2, 4), // v3-v5
            (4, 5), // v5-v6
            (4, 7), // v5-v8
            (5, 7), // v6-v8
            (4, 6), // v5-v7
            (6, 7), // v7-v8
            (6, 8), // v7-v9
            (7, 8), // v8-v9
            (3, 6), // v4-v7
            (3, 8), // v4-v9
            (1, 3), // v2-v4
            (1, 8), // v2-v9
        ];
        CsrGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn identity_orientation_matches_example2() {
        // Example 2: with η(v_i) < η(v_j) for i < j, only v6, v7, v8, v9
        // (ids 5, 6, 7, 8) have at least two out-neighbours.
        let g = paper_fig2_graph();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
        let with_two: Vec<NodeId> = (0..9).filter(|&u| dag.out_degree(u) >= 2).collect();
        assert_eq!(with_two, vec![5, 6, 7, 8]);
        // v6's out-neighbours are v1, v3, v5 (ids 0, 2, 4).
        assert_eq!(dag.out_neighbors(5), &[0, 2, 4]);
    }

    #[test]
    fn arcs_point_to_lower_ranks() {
        let g = paper_fig2_graph();
        for kind in [
            OrderingKind::Identity,
            OrderingKind::DegreeAsc,
            OrderingKind::DegreeDesc,
            OrderingKind::Degeneracy,
            OrderingKind::Color,
        ] {
            let dag = Dag::from_graph(&g, NodeOrder::compute(&g, kind));
            for u in 0..9 {
                for &v in dag.out_neighbors(u) {
                    assert!(dag.rank(v) < dag.rank(u), "{kind:?}: arc {u}->{v} not descending");
                }
            }
        }
    }

    #[test]
    fn arc_count_equals_edge_count() {
        let g = paper_fig2_graph();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Degeneracy));
        assert_eq!(dag.num_arcs(), g.num_edges());
    }

    #[test]
    fn out_neighbors_sorted_by_id() {
        let g = paper_fig2_graph();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::DegreeDesc));
        for u in 0..9 {
            let out = dag.out_neighbors(u);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "node {u}: {out:?}");
        }
    }

    #[test]
    fn has_arc_agrees_with_listing() {
        let g = paper_fig2_graph();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
        for u in 0..9u32 {
            for v in 0..9u32 {
                let expect = dag.out_neighbors(u).contains(&v);
                assert_eq!(dag.has_arc(u, v), expect);
            }
        }
    }

    #[test]
    fn empty_graph_dag() {
        let g = CsrGraph::empty();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
        assert_eq!(dag.num_nodes(), 0);
        assert_eq!(dag.max_out_degree(), 0);
    }
}
