use crate::{CsrGraph, NodeId};

/// Built-in total node orderings.
///
/// The ordering assigns each node a rank `η(u) ∈ 0..n`. Following
/// Algorithm 1 of the paper, the DAG orientation points every edge from the
/// higher-ranked endpoint to the lower-ranked one, so `N⁺(u)` contains
/// exactly the neighbours `v` with `η(v) < η(u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// `η(u) = u`. The ordering used in the paper's running example (Fig. 4).
    Identity,
    /// Ascending degree, ties broken by node id. Nodes with large degree get
    /// large ranks, so the (k-1)-clique search for a hub scans its
    /// lower-degree neighbours — the ordering discussed in Section IV-A.
    DegreeAsc,
    /// Descending degree, ties broken by node id.
    DegreeDesc,
    /// Degeneracy (k-core) ordering. Ranks are assigned so that
    /// `|N⁺(u)| <= degeneracy(G)` for every node, which bounds the k-clique
    /// listing recursion (Danisch et al., WWW'18 — reference \[13\]).
    Degeneracy,
    /// Greedy-colouring ordering (Li et al., VLDB'20 — the paper's
    /// reference \[14\]): nodes are greedily coloured in core order and
    /// ranked by ascending colour. Since adjacent nodes never share a
    /// colour, the orientation is well-defined, and a node can only root a
    /// k-clique if its colour is at least `k - 1` — a strong pruning signal
    /// for listing-heavy workloads.
    Color,
}

impl OrderingKind {
    /// Every built-in ordering.
    pub const ALL: [OrderingKind; 5] = [
        OrderingKind::Identity,
        OrderingKind::DegreeAsc,
        OrderingKind::DegreeDesc,
        OrderingKind::Degeneracy,
        OrderingKind::Color,
    ];

    /// The stable lowercase token used by CLIs and config files; parses
    /// back via [`std::str::FromStr`].
    pub fn token(self) -> &'static str {
        match self {
            OrderingKind::Identity => "identity",
            OrderingKind::DegreeAsc => "degree-asc",
            OrderingKind::DegreeDesc => "degree-desc",
            OrderingKind::Degeneracy => "degeneracy",
            OrderingKind::Color => "color",
        }
    }
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Error of parsing an [`OrderingKind`] token: it matched no ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOrderingError {
    /// The rejected token.
    pub token: String,
}

impl std::fmt::Display for ParseOrderingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = OrderingKind::ALL.iter().map(|o| o.token()).collect();
        write!(f, "unknown ordering {:?} (try {})", self.token, names.join("|"))
    }
}

impl std::error::Error for ParseOrderingError {}

impl std::str::FromStr for OrderingKind {
    type Err = ParseOrderingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let token = s.trim().to_ascii_lowercase();
        OrderingKind::ALL
            .into_iter()
            .find(|o| token == o.token())
            .ok_or(ParseOrderingError { token })
    }
}

/// A total order on the nodes of a graph.
///
/// Stores both directions of the bijection: `rank[u]` is the position of
/// node `u`, and `order[r]` is the node at position `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOrder {
    rank: Vec<u32>,
    order: Vec<NodeId>,
}

impl NodeOrder {
    /// Computes one of the built-in orderings for `g`.
    pub fn compute(g: &CsrGraph, kind: OrderingKind) -> Self {
        let n = g.num_nodes();
        match kind {
            OrderingKind::Identity => Self::from_order((0..n as NodeId).collect()),
            OrderingKind::DegreeAsc => {
                let mut order: Vec<NodeId> = (0..n as NodeId).collect();
                order.sort_by_key(|&u| (g.degree(u), u));
                Self::from_order(order)
            }
            OrderingKind::DegreeDesc => {
                let mut order: Vec<NodeId> = (0..n as NodeId).collect();
                order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
                Self::from_order(order)
            }
            OrderingKind::Degeneracy => {
                let removal = degeneracy_removal_order(g).0;
                // Node removed first gets the *largest* rank so that
                // out-neighbours (rank < own rank) are the later-removed
                // nodes, giving |N⁺(u)| <= degeneracy.
                let mut order = removal;
                order.reverse();
                Self::from_order(order)
            }
            OrderingKind::Color => {
                let colors = greedy_coloring(g);
                let mut order: Vec<NodeId> = (0..n as NodeId).collect();
                order.sort_by_key(|&u| (colors[u as usize], u));
                Self::from_order(order)
            }
        }
    }

    /// Builds an order from per-node scores, ascending, ties by node id —
    /// the ordering of Algorithm 3: `η(u) < η(v)  ⇔  (s(u), u) < (s(v), v)`.
    pub fn from_scores_asc(scores: &[u64]) -> Self {
        let mut order: Vec<NodeId> = (0..scores.len() as NodeId).collect();
        order.sort_by_key(|&u| (scores[u as usize], u));
        Self::from_order(order)
    }

    /// Builds an order from an explicit permutation `order[r] = node`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `order` is not a permutation of `0..n`.
    pub fn from_order(order: Vec<NodeId>) -> Self {
        let n = order.len();
        let mut rank = vec![u32::MAX; n];
        for (r, &u) in order.iter().enumerate() {
            debug_assert_eq!(rank[u as usize], u32::MAX, "order is not a permutation");
            rank[u as usize] = r as u32;
        }
        debug_assert!(rank.iter().all(|&r| r != u32::MAX), "order is not a permutation");
        NodeOrder { rank, order }
    }

    /// Rank (position) of node `u`.
    #[inline]
    pub fn rank(&self, u: NodeId) -> u32 {
        self.rank[u as usize]
    }

    /// The node occupying position `r`.
    #[inline]
    pub fn node_at(&self, r: usize) -> NodeId {
        self.order[r]
    }

    /// Nodes in ascending rank order.
    #[inline]
    pub fn iter_ascending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Number of nodes covered by the order.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the order of the empty graph.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Raw rank array, indexed by node id.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }
}

/// Greedily colours the graph, visiting nodes in reverse degeneracy-removal
/// order (core order), which uses at most `degeneracy + 1` colours. Each
/// node receives the smallest colour absent from its already-coloured
/// neighbourhood. Adjacent nodes always receive distinct colours.
pub fn greedy_coloring(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let (removal, degen) = degeneracy_removal_order(g);
    let mut colors = vec![u32::MAX; n];
    let mut used = vec![false; degen + 2];
    for &u in removal.iter().rev() {
        for &v in g.neighbors(u) {
            let c = colors[v as usize];
            if c != u32::MAX {
                used[c as usize] = true;
            }
        }
        let mut pick = 0u32;
        while used[pick as usize] {
            pick += 1;
        }
        colors[u as usize] = pick;
        for &v in g.neighbors(u) {
            let c = colors[v as usize];
            if c != u32::MAX {
                used[c as usize] = false;
            }
        }
    }
    colors
}

/// Computes the degeneracy removal order and the degeneracy value.
///
/// Classic bucket-queue peeling in `O(n + m)`: repeatedly removes a node of
/// minimum remaining degree. The returned vector lists nodes in removal
/// order; the second element is the degeneracy (maximum degree at removal
/// time over all nodes).
pub fn degeneracy_removal_order(g: &CsrGraph) -> (Vec<NodeId>, usize) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let max_deg = g.max_degree();
    let mut deg: Vec<usize> = (0..n as NodeId).map(|u| g.degree(u)).collect();
    // bucket[d] holds nodes with current degree d.
    let mut bucket_heads: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for u in 0..n as NodeId {
        bucket_heads[deg[u as usize]].push(u);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    while order.len() < n {
        // Find the lowest non-empty bucket. `cur` only needs to back up by
        // one per removal because degrees drop by at most one per neighbour.
        while cur <= max_deg && bucket_heads[cur].is_empty() {
            cur += 1;
        }
        // Lazy deletion: entries may be stale (node already removed or its
        // degree changed); skip those.
        let u = match bucket_heads[cur].pop() {
            Some(u) => u,
            None => continue,
        };
        if removed[u as usize] || deg[u as usize] != cur {
            continue;
        }
        removed[u as usize] = true;
        degeneracy = degeneracy.max(cur);
        order.push(u);
        for &v in g.neighbors(u) {
            if !removed[v as usize] {
                let d = deg[v as usize];
                deg[v as usize] = d - 1;
                bucket_heads[d - 1].push(v);
                if d - 1 < cur {
                    cur = d - 1;
                }
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    fn k4_plus_tail() -> CsrGraph {
        // K4 on 0..4, with a path 4-5 hanging off node 0.
        CsrGraph::from_edges(
            6,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4), (4, 5)],
        )
        .unwrap()
    }

    #[test]
    fn identity_ranks_equal_ids() {
        let g = path4();
        let o = NodeOrder::compute(&g, OrderingKind::Identity);
        for u in 0..4 {
            assert_eq!(o.rank(u), u);
            assert_eq!(o.node_at(u as usize), u);
        }
    }

    #[test]
    fn degree_orders_are_inverse_of_each_other_modulo_ties() {
        let g = k4_plus_tail();
        let asc = NodeOrder::compute(&g, OrderingKind::DegreeAsc);
        let desc = NodeOrder::compute(&g, OrderingKind::DegreeDesc);
        // Node 5 has the unique minimum degree (1); node 0 the unique max (5).
        assert_eq!(asc.node_at(0), 5);
        assert_eq!(desc.node_at(0), 0);
        assert_eq!(asc.rank(0), 5);
    }

    #[test]
    fn degeneracy_of_k4_is_three() {
        let g = k4_plus_tail();
        let (order, d) = degeneracy_removal_order(&g);
        assert_eq!(d, 3);
        assert_eq!(order.len(), 6);
        // Peeling must remove the tail (5 then 4) before breaking into K4.
        assert_eq!(order[0], 5);
        assert_eq!(order[1], 4);
    }

    #[test]
    fn degeneracy_order_bounds_out_degree() {
        let g = k4_plus_tail();
        let o = NodeOrder::compute(&g, OrderingKind::Degeneracy);
        let (_, degen) = degeneracy_removal_order(&g);
        for u in 0..g.num_nodes() as NodeId {
            let out = g.neighbors(u).iter().filter(|&&v| o.rank(v) < o.rank(u)).count();
            assert!(out <= degen, "node {u} has out-degree {out} > degeneracy {degen}");
        }
    }

    #[test]
    fn degeneracy_of_path_is_one_and_of_cycle_is_two() {
        let path = path4();
        assert_eq!(degeneracy_removal_order(&path).1, 1);
        let cycle = CsrGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(degeneracy_removal_order(&cycle).1, 2);
    }

    #[test]
    fn score_order_sorts_ascending_with_id_ties() {
        let scores = vec![5, 2, 2, 9];
        let o = NodeOrder::from_scores_asc(&scores);
        assert_eq!(o.node_at(0), 1); // score 2, id 1
        assert_eq!(o.node_at(1), 2); // score 2, id 2
        assert_eq!(o.node_at(2), 0); // score 5
        assert_eq!(o.node_at(3), 3); // score 9
    }

    #[test]
    fn iter_ascending_matches_ranks() {
        let g = k4_plus_tail();
        let o = NodeOrder::compute(&g, OrderingKind::DegreeAsc);
        let seq: Vec<NodeId> = o.iter_ascending().collect();
        for (r, &u) in seq.iter().enumerate() {
            assert_eq!(o.rank(u) as usize, r);
        }
    }

    #[test]
    fn coloring_is_proper_and_bounded() {
        let g = k4_plus_tail();
        let colors = greedy_coloring(&g);
        for (u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize], "edge ({u},{v}) monochrome");
        }
        let (_, degen) = degeneracy_removal_order(&g);
        assert!(colors.iter().all(|&c| c as usize <= degen));
        // K4 needs exactly 4 colours.
        let k4_colors: std::collections::HashSet<u32> =
            (0..4).map(|u| colors[u as usize]).collect();
        assert_eq!(k4_colors.len(), 4);
    }

    #[test]
    fn color_ordering_ranks_by_color() {
        let g = k4_plus_tail();
        let colors = greedy_coloring(&g);
        let o = NodeOrder::compute(&g, OrderingKind::Color);
        // Ranks must be monotone in (color, id).
        for r in 1..o.len() {
            let (a, b) = (o.node_at(r - 1), o.node_at(r));
            assert!(
                (colors[a as usize], a) < (colors[b as usize], b),
                "order not sorted by (color, id)"
            );
        }
    }

    #[test]
    fn empty_graph_order() {
        let g = CsrGraph::empty();
        let o = NodeOrder::compute(&g, OrderingKind::Degeneracy);
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
        assert_eq!(degeneracy_removal_order(&g).1, 0);
    }

    #[test]
    fn star_graph_degeneracy_is_one() {
        let g = CsrGraph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let (order, d) = degeneracy_removal_order(&g);
        assert_eq!(d, 1);
        // The hub can only be removed once its remaining degree is <= 1,
        // i.e. after at least three of the four leaves.
        let hub_pos = order.iter().position(|&u| u == 0).unwrap();
        assert!(hub_pos >= 3, "hub removed too early: position {hub_pos} in {order:?}");
    }
}
