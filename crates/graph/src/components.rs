//! Connectivity utilities: BFS-based connected components.
//!
//! Used by the CLI's `stats` output and by tests that need to reason about
//! the reach of bridges between planted communities.

use crate::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Connected-component labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[u]` is the component id of node `u` (ids are dense, assigned
    /// in order of discovery from node 0 upward).
    pub label: Vec<u32>,
    /// `size[c]` is the number of nodes in component `c`.
    pub size: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.size.len()
    }

    /// Id of the largest component (0 for the empty graph).
    pub fn largest(&self) -> u32 {
        self.size.iter().enumerate().max_by_key(|&(_, s)| s).map(|(i, _)| i as u32).unwrap_or(0)
    }

    /// True when `u` and `v` are connected.
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Nodes of component `c`, ascending.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        (0..self.label.len() as NodeId).filter(|&u| self.label[u as usize] == c).collect()
    }
}

/// Labels connected components by BFS in `O(n + m)`.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut size = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let c = size.len() as u32;
        let mut members = 0usize;
        label[start as usize] = c;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            members += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = c;
                    queue.push_back(v);
                }
            }
        }
        size.push(members);
    }
    Components { label, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_two_triangles_separately() {
        let g =
            CsrGraph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert!(c.connected(0, 2));
        assert!(!c.connected(0, 3));
        assert_eq!(c.size, vec![3, 3]);
        assert_eq!(c.members(0), vec![0, 1, 2]);
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let g = CsrGraph::from_edges(4, vec![(0, 1)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.size.iter().sum::<usize>(), 4);
    }

    #[test]
    fn bridge_merges_components() {
        let g = CsrGraph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 0);
        assert_eq!(c.size, vec![6]);
    }

    #[test]
    fn empty_graph() {
        let c = connected_components(&CsrGraph::empty());
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), 0);
    }

    #[test]
    fn largest_picks_the_biggest() {
        let g = CsrGraph::from_edges(7, vec![(0, 1), (2, 3), (3, 4), (4, 5), (5, 6)]).unwrap();
        let c = connected_components(&g);
        let big = c.largest();
        assert_eq!(c.members(big).len(), 5);
    }
}
