//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use dkc_graph::{CsrGraph, Dag, DynGraph, NodeOrder, OrderingKind};
use proptest::prelude::*;

/// Strategy: a random edge set over up to `n` nodes.
fn edges_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #[test]
    fn csr_adjacency_matches_input((n, edges) in edges_strategy(40, 120)) {
        let g = CsrGraph::from_edges(n as usize, edges.clone()).unwrap();
        let set: HashSet<(u32, u32)> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        prop_assert_eq!(g.num_edges(), set.len());
        for u in 0..n {
            for v in 0..n {
                let expect = u != v && set.contains(&(u.min(v), u.max(v)));
                prop_assert_eq!(g.has_edge(u, v), expect, "edge ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn csr_degrees_sum_to_twice_edges((n, edges) in edges_strategy(50, 200)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn all_orderings_are_permutations((n, edges) in edges_strategy(40, 100)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        for kind in [
            OrderingKind::Identity,
            OrderingKind::DegreeAsc,
            OrderingKind::DegreeDesc,
            OrderingKind::Degeneracy,
            OrderingKind::Color,
        ] {
            let o = NodeOrder::compute(&g, kind);
            let mut seen = vec![false; n as usize];
            for r in 0..n as usize {
                let u = o.node_at(r);
                prop_assert!(!seen[u as usize]);
                seen[u as usize] = true;
                prop_assert_eq!(o.rank(u) as usize, r);
            }
        }
    }

    #[test]
    fn dag_partitions_each_edge_once((n, edges) in edges_strategy(40, 100)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Degeneracy));
        // Each undirected edge appears as exactly one arc, oriented to the
        // lower-ranked endpoint.
        prop_assert_eq!(dag.num_arcs(), g.num_edges());
        for (u, v) in g.iter_edges() {
            let u_to_v = dag.has_arc(u, v);
            let v_to_u = dag.has_arc(v, u);
            prop_assert!(u_to_v ^ v_to_u, "edge ({}, {}) must be oriented exactly once", u, v);
            if u_to_v {
                prop_assert!(dag.rank(v) < dag.rank(u));
            } else {
                prop_assert!(dag.rank(u) < dag.rank(v));
            }
        }
    }

    #[test]
    fn dyn_graph_matches_model(ops in proptest::collection::vec(
        (any::<bool>(), 0u32..20, 0u32..20), 1..200))
    {
        let mut g = DynGraph::new(20);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for (insert, a, b) in ops {
            let key = (a.min(b), a.max(b));
            if insert {
                let added = g.insert_edge(a, b);
                let model_added = a != b && model.insert(key);
                prop_assert_eq!(added, model_added);
            } else {
                let removed = g.remove_edge(a, b);
                let model_removed = model.remove(&key);
                prop_assert_eq!(removed, model_removed);
            }
            prop_assert_eq!(g.num_edges(), model.len());
        }
        for u in 0..20 {
            for v in 0..20 {
                prop_assert_eq!(g.has_edge(u, v), u != v && model.contains(&(u.min(v), u.max(v))));
            }
        }
    }

    #[test]
    fn csr_dyn_roundtrip((n, edges) in edges_strategy(30, 90)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let round = DynGraph::from_csr(&g).to_csr();
        prop_assert_eq!(g, round);
    }
}
