//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use dkc_graph::io::{
    parse_edge_list, parse_edge_list_chunked, read_snapshot, write_snapshot, LoadedGraph,
};
use dkc_graph::{CsrGraph, Dag, DynGraph, GraphError, NodeOrder, OrderingKind, SnapshotError};
use dkc_par::ParConfig;
use proptest::prelude::*;

/// Strategy: a random edge set over up to `n` nodes.
fn edges_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #[test]
    fn csr_adjacency_matches_input((n, edges) in edges_strategy(40, 120)) {
        let g = CsrGraph::from_edges(n as usize, edges.clone()).unwrap();
        let set: HashSet<(u32, u32)> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        prop_assert_eq!(g.num_edges(), set.len());
        for u in 0..n {
            for v in 0..n {
                let expect = u != v && set.contains(&(u.min(v), u.max(v)));
                prop_assert_eq!(g.has_edge(u, v), expect, "edge ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn csr_degrees_sum_to_twice_edges((n, edges) in edges_strategy(50, 200)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn all_orderings_are_permutations((n, edges) in edges_strategy(40, 100)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        for kind in [
            OrderingKind::Identity,
            OrderingKind::DegreeAsc,
            OrderingKind::DegreeDesc,
            OrderingKind::Degeneracy,
            OrderingKind::Color,
        ] {
            let o = NodeOrder::compute(&g, kind);
            let mut seen = vec![false; n as usize];
            for r in 0..n as usize {
                let u = o.node_at(r);
                prop_assert!(!seen[u as usize]);
                seen[u as usize] = true;
                prop_assert_eq!(o.rank(u) as usize, r);
            }
        }
    }

    #[test]
    fn dag_partitions_each_edge_once((n, edges) in edges_strategy(40, 100)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Degeneracy));
        // Each undirected edge appears as exactly one arc, oriented to the
        // lower-ranked endpoint.
        prop_assert_eq!(dag.num_arcs(), g.num_edges());
        for (u, v) in g.iter_edges() {
            let u_to_v = dag.has_arc(u, v);
            let v_to_u = dag.has_arc(v, u);
            prop_assert!(u_to_v ^ v_to_u, "edge ({}, {}) must be oriented exactly once", u, v);
            if u_to_v {
                prop_assert!(dag.rank(v) < dag.rank(u));
            } else {
                prop_assert!(dag.rank(u) < dag.rank(v));
            }
        }
    }

    #[test]
    fn dyn_graph_matches_model(ops in proptest::collection::vec(
        (any::<bool>(), 0u32..20, 0u32..20), 1..200))
    {
        let mut g = DynGraph::new(20);
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for (insert, a, b) in ops {
            let key = (a.min(b), a.max(b));
            if insert {
                let added = g.insert_edge(a, b);
                let model_added = a != b && model.insert(key);
                prop_assert_eq!(added, model_added);
            } else {
                let removed = g.remove_edge(a, b);
                let model_removed = model.remove(&key);
                prop_assert_eq!(removed, model_removed);
            }
            prop_assert_eq!(g.num_edges(), model.len());
        }
        for u in 0..20 {
            for v in 0..20 {
                prop_assert_eq!(g.has_edge(u, v), u != v && model.contains(&(u.min(v), u.max(v))));
            }
        }
    }

    #[test]
    fn csr_dyn_roundtrip((n, edges) in edges_strategy(30, 90)) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let round = DynGraph::from_csr(&g).to_csr();
        prop_assert_eq!(g, round);
    }
}

/// Renders an edge list text with sparse labels, comments, and self-loops
/// preserved as written — the adversarial input for the parser tests.
fn render_text(edges: &[(u32, u32)], label_stride: u64) -> String {
    let mut text = String::from("% generated header\n# second comment\n");
    for (i, &(a, b)) in edges.iter().enumerate() {
        if i % 7 == 3 {
            text.push_str("// interleaved comment\n");
        }
        text.push_str(&format!(
            "{} {}\n",
            a as u64 * label_stride + 1,
            b as u64 * label_stride + 1
        ));
    }
    text
}

/// The sequential stats with the parallel run's thread count substituted —
/// everything except `parse_threads` must match bit-for-bit.
fn seq_stats_with_threads(
    seq: &dkc_graph::io::LoadStats,
    parse_threads: usize,
) -> dkc_graph::io::LoadStats {
    dkc_graph::io::LoadStats { parse_threads, ..seq.clone() }
}

proptest! {
    /// text → CSR → snapshot → CSR round-trips nodes, edges, and labels
    /// exactly, with identical O(1) label lookups.
    #[test]
    fn text_snapshot_roundtrip_is_exact(
        (n, edges) in edges_strategy(40, 120),
        stride in 1u64..1000,
    ) {
        let _ = n;
        let text = render_text(&edges, stride);
        let (loaded, stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        let expect_self_loops = edges.iter().filter(|(a, b)| a == b).count();
        prop_assert_eq!(stats.self_loops, expect_self_loops);

        let mut buf = Vec::new();
        write_snapshot(&loaded, &mut buf).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();
        prop_assert_eq!(&back.graph, &loaded.graph);
        prop_assert_eq!(&back.labels, &loaded.labels);
        for &l in &loaded.labels {
            prop_assert_eq!(back.node_for_label(l), loaded.node_for_label(l));
        }
        prop_assert_eq!(back.node_for_label(u64::MAX), None);
    }

    /// Parallel chunked parsing is bit-identical to sequential parsing —
    /// same CSR, same label mapping, same stats — across thread counts and
    /// pathological chunk sizes.
    #[test]
    fn parallel_parse_equals_sequential_parse(
        (n, edges) in edges_strategy(40, 150),
        threads_idx in 0usize..3,
        chunk_idx in 0usize..4,
    ) {
        let _ = n;
        // The DKC_THREADS CI matrix covers the env-default path; sweep the
        // explicit thread counts {1, 2, 8} here.
        let threads = [1usize, 2, 8][threads_idx];
        let chunk_bytes = [1usize, 13, 255, 1 << 20][chunk_idx];
        let text = render_text(&edges, 3);
        let (seq, seq_stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        let (par, par_stats) =
            parse_edge_list_chunked(text.as_bytes(), ParConfig::new(threads), chunk_bytes)
                .unwrap();
        prop_assert_eq!(par.graph, seq.graph, "threads={} chunk={}", threads, chunk_bytes);
        prop_assert_eq!(par.labels, seq.labels);
        prop_assert_eq!(par_stats.lines, seq_stats.lines);
        prop_assert_eq!(par_stats.comment_lines, seq_stats.comment_lines);
        prop_assert_eq!(par_stats.edge_records, seq_stats.edge_records);
        prop_assert_eq!(par_stats.self_loops, seq_stats.self_loops);
    }

    /// The sharded label-interning merge (the parallel intern path) is
    /// bit-identical to the sequential intern loop for any thread count,
    /// chunk size AND shard count — graph, label order, and stats.
    #[test]
    fn sharded_intern_merge_equals_sequential(
        (n, edges) in edges_strategy(40, 150),
        stride in 1u64..1000,
        threads_idx in 0usize..2,
        chunk_idx in 0usize..3,
        shards_idx in 0usize..4,
    ) {
        let _ = n;
        let threads = [2usize, 8][threads_idx];
        let chunk_bytes = [1usize, 29, 1 << 20][chunk_idx];
        let shards = [1usize, 2, 7, 1024][shards_idx];
        let text = render_text(&edges, stride);
        let (seq, seq_stats) = parse_edge_list(text.as_bytes(), ParConfig::sequential()).unwrap();
        let (par, par_stats) = dkc_graph::io::parse_edge_list_sharded(
            text.as_bytes(),
            ParConfig::new(threads),
            chunk_bytes,
            shards,
        )
        .unwrap();
        prop_assert_eq!(
            par.labels, seq.labels,
            "threads={} chunk={} shards={}", threads, chunk_bytes, shards
        );
        prop_assert_eq!(par.graph, seq.graph);
        prop_assert_eq!(par_stats, seq_stats_with_threads(&seq_stats, par_stats.parse_threads));
        for &l in &seq.labels {
            prop_assert_eq!(par.node_for_label(l), seq.node_for_label(l));
        }
    }

    /// Any single corruption of a snapshot — truncation, payload bit flip,
    /// or version skew — yields a structured error, never a graph.
    #[test]
    fn damaged_snapshots_yield_structured_errors(
        (n, edges) in edges_strategy(30, 90),
        damage_seed in 0usize..10_000,
        mode in 0u8..3,
    ) {
        let g = CsrGraph::from_edges(n as usize, edges).unwrap();
        let loaded = LoadedGraph::identity(g);
        let mut buf = Vec::new();
        write_snapshot(&loaded, &mut buf).unwrap();
        match mode {
            0 => {
                // Truncate somewhere strictly inside the file.
                let cut = damage_seed % buf.len();
                let err = read_snapshot(&buf[..cut]).unwrap_err();
                prop_assert!(
                    matches!(
                        err,
                        GraphError::Snapshot(
                            SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                        )
                    ),
                    "cut={}: {}", cut, err
                );
            }
            1 => {
                // Flip one payload byte: checksum must catch it.
                if buf.len() > 48 {
                    let idx = 48 + damage_seed % (buf.len() - 48);
                    buf[idx] ^= 1 << (damage_seed % 8);
                    let err = read_snapshot(&buf[..]).unwrap_err();
                    prop_assert!(
                        matches!(
                            err,
                            GraphError::Snapshot(SnapshotError::ChecksumMismatch { .. })
                        ),
                        "idx={}: {}", idx, err
                    );
                }
            }
            _ => {
                // Unknown future version.
                let v = 2 + (damage_seed as u32 % 1000);
                buf[8..12].copy_from_slice(&v.to_le_bytes());
                let err = read_snapshot(&buf[..]).unwrap_err();
                prop_assert!(
                    matches!(
                        err,
                        GraphError::Snapshot(SnapshotError::UnsupportedVersion { found }) if found == v
                    ),
                    "{}", err
                );
            }
        }
    }
}
