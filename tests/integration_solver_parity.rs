//! End-to-end parity check: every solver in the toolkit — the four
//! heuristics (HG, GC, L, LP), the exact baseline (OPT), and the greedy
//! clique-graph baseline — runs on the same graphs, produces a valid and
//! maximal solution, and never does worse than the HG baseline (each is
//! either a refinement of HG's greedy framework or an exact search).

use disjoint_kcliques::core::{GcSolver, GreedyCliqueGraphSolver, OptSolver};
use disjoint_kcliques::datagen::registry::social_standin;
use disjoint_kcliques::prelude::*;

fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(HgSolver::default()),
        Box::new(GcSolver::new()),
        Box::new(LightweightSolver::l()),
        Box::new(LightweightSolver::lp()),
        // Budgeted OPT: on these small graphs it completes optimally, and on
        // anything larger it degrades to a structured OOM/OOT error instead
        // of hanging the suite.
        Box::new(OptSolver::budgeted()),
        Box::new(GreedyCliqueGraphSolver::default()),
    ]
}

fn check_parity_on(g: &CsrGraph, k: usize) {
    let baseline = HgSolver::default().solve(g, k).expect("HG must solve");
    baseline.verify(g).expect("HG solution invalid");

    for solver in all_solvers() {
        let s = solver.solve(g, k).unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
        s.verify(g)
            .unwrap_or_else(|e| panic!("{} produced an invalid solution: {e}", solver.name()));
        s.verify_maximal(g)
            .unwrap_or_else(|e| panic!("{} produced a non-maximal solution: {e}", solver.name()));
        assert_eq!(s.k(), k, "{} reported wrong k", solver.name());
        assert!(
            s.len() >= baseline.len(),
            "{} found {} cliques, worse than HG's {} (k = {k})",
            solver.name(),
            s.len(),
            baseline.len()
        );
    }
}

#[test]
fn every_solver_matches_or_beats_hg_on_a_social_standin() {
    // Small enough that OPT's exact MIS search completes within its default
    // budgets.
    let g = social_standin(26, 95, 11);
    for k in [3, 4] {
        check_parity_on(&g, k);
    }
}

#[test]
fn engine_dispatch_matches_the_hand_constructed_solvers() {
    // The same solvers, reached through the unified engine with the
    // matching request, must return identical solutions. (The exhaustive
    // per-budget/per-thread property version lives in dkc-core's test
    // suite; this is the end-to-end facade check.)
    let g = social_standin(26, 95, 11);
    for k in [3usize, 4] {
        let pairs: Vec<(Box<dyn Solver>, SolveRequest)> = vec![
            (Box::new(HgSolver::default()), SolveRequest::new(Algo::Hg, k)),
            (Box::new(GcSolver::new()), SolveRequest::new(Algo::Gc, k)),
            (Box::new(LightweightSolver::l()), SolveRequest::new(Algo::L, k)),
            (Box::new(LightweightSolver::lp()), SolveRequest::new(Algo::Lp, k)),
            (
                Box::new(OptSolver::budgeted()),
                SolveRequest::new(Algo::Opt, k).with_budget(Budget::standard()),
            ),
            (Box::new(GreedyCliqueGraphSolver::default()), SolveRequest::new(Algo::GreedyCg, k)),
        ];
        for (solver, req) in pairs {
            let direct = solver.solve(&g, k).unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
            let report =
                Engine::solve(&g, req).unwrap_or_else(|e| panic!("engine {}: {e}", req.algo));
            assert_eq!(
                report.solution,
                direct,
                "engine vs direct mismatch for {} (k = {k})",
                solver.name()
            );
            assert_eq!(report.algo.paper_name(), solver.name());
        }
    }
}

#[test]
fn budgeted_opt_degrades_structurally_beyond_exact_scale() {
    // Far past the 26-node comfort zone of the exact baseline: budgeted OPT
    // must either finish (optimally or not) with a valid solution or
    // surface a structured OOM/OOT error — never hang or panic.
    let g = social_standin(320, 2_400, 7);
    let baseline = HgSolver::default().solve(&g, 3).expect("HG must solve");
    match OptSolver::budgeted().solve(&g, 3) {
        Ok(s) => {
            s.verify(&g).expect("OPT solution invalid");
            assert!(s.len() >= baseline.len(), "exact completion can't be worse than HG");
        }
        Err(SolveError::Timeout { partial }) => {
            // Structured OOT: the partial solution still has to be valid.
            partial.verify(&g).expect("OOT partial invalid");
        }
        Err(SolveError::CliqueGraph(_)) => {} // structured OOM
        Err(e) => panic!("unexpected failure mode: {e}"),
    }
}

#[test]
fn every_solver_matches_or_beats_hg_on_the_paper_example() {
    // Three bridged triangles — the graph from the crate-level doc example:
    // the unique optimum is all three triangles.
    let g = CsrGraph::from_edges(
        9,
        vec![
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (6, 7),
            (7, 8),
            (6, 8),
            (2, 3),
            (5, 6),
        ],
    )
    .unwrap();
    check_parity_on(&g, 3);
    for solver in all_solvers() {
        let s = solver.solve(&g, 3).unwrap();
        assert_eq!(s.len(), 3, "{} must find all three triangles", solver.name());
    }
}

#[test]
fn every_solver_handles_degenerate_graphs() {
    // No edges at all: every solver must return a valid empty solution.
    let empty = CsrGraph::from_edges(6, vec![]).unwrap();
    // A single k-clique exactly.
    let lone = CsrGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 2)]).unwrap();
    for solver in all_solvers() {
        let s = solver.solve(&empty, 3).unwrap();
        assert_eq!(s.len(), 0, "{} on the empty graph", solver.name());
        s.verify(&empty).unwrap();
        s.verify_maximal(&empty).unwrap();

        let s = solver.solve(&lone, 3).unwrap();
        assert_eq!(s.len(), 1, "{} on a lone triangle", solver.name());
        s.verify(&lone).unwrap();
        s.verify_maximal(&lone).unwrap();
    }
}
