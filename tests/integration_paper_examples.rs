//! The paper's worked examples, end to end through the public facade:
//! Example 1/2 (Fig. 2), Example 3 (scores), Fig. 3 (clique graph),
//! Fig. 5 (dynamic swap scenario).

use disjoint_kcliques::clique::{count_kcliques, node_scores, Clique};
use disjoint_kcliques::cliquegraph::{CliqueGraph, CliqueGraphLimits};
use disjoint_kcliques::core::{clique_degree_bounds, OptSolver};
use disjoint_kcliques::graph::{Dag, NodeOrder};
use disjoint_kcliques::prelude::*;

/// Fig. 2 graph, v1..v9 → 0..8.
fn fig2() -> CsrGraph {
    CsrGraph::from_edges(
        9,
        vec![
            (0, 2),
            (0, 5),
            (2, 5),
            (2, 4),
            (4, 5),
            (4, 7),
            (5, 7),
            (4, 6),
            (6, 7),
            (6, 8),
            (7, 8),
            (3, 6),
            (3, 8),
            (1, 3),
            (1, 8),
        ],
    )
    .unwrap()
}

#[test]
fn example1_seven_3cliques_and_the_two_solution_sizes() {
    let g = fig2();
    let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
    assert_eq!(count_kcliques(&dag, 3), 7, "Example 1: exactly seven 3-cliques");

    // Fig. 2(c): a maximal (not maximum) set of size 2 exists.
    let mut s1 = Solution::new(3);
    s1.push(Clique::new(&[2, 4, 5])); // (v3, v5, v6)
    s1.push(Clique::new(&[6, 7, 8])); // (v7, v8, v9)
    s1.verify(&g).unwrap();
    s1.verify_maximal(&g).unwrap();

    // Fig. 2(d): the maximum has size 3 — confirmed by the exact solver.
    let opt = OptSolver::new().solve(&g, 3).unwrap();
    assert_eq!(opt.len(), 3);
}

#[test]
fn example3_scores_and_theorem2_bounds() {
    let g = fig2();
    let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Identity));
    let scores = node_scores(&dag, 3);
    // s_n(v6) = s_n(v5) = s_n(v8) = 3.
    assert_eq!(scores[5], 3);
    assert_eq!(scores[4], 3);
    assert_eq!(scores[7], 3);
    // s_c(C3) = s_n(v5) + s_n(v6) + s_n(v8) = 9.
    let c3 = Clique::new(&[4, 5, 7]);
    assert_eq!(c3.score(&scores), 9);
    // Theorem 2 brackets C3's true degree (4 in Fig. 3) by [3, 6].
    let b = clique_degree_bounds(9, 3);
    assert_eq!((b.lower, b.upper), (3, 6));
    assert!(b.contains(4));
}

#[test]
fn fig3_clique_graph_shape() {
    let g = fig2();
    let cg = CliqueGraph::build(&g, 3, CliqueGraphLimits::unlimited()).unwrap();
    assert_eq!(cg.num_cliques(), 7);
    assert_eq!(cg.num_conflicts(), 11);
    // C1 = (v1, v3, v6) has degree 2 (Example 3).
    let c1 = cg.cliques().iter().position(|c| c == [0, 2, 5]).unwrap() as u32;
    assert_eq!(cg.clique_degree(c1), 2);
}

#[test]
fn fig5_dynamic_swap_walkthrough() {
    // G1 of Fig. 5(a), v1..v11 → 0..10, S = {(v3,v4,v5), (v9,v10,v11)}.
    let g1 = CsrGraph::from_edges(
        11,
        vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (2, 4),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (8, 10),
            (9, 10),
        ],
    )
    .unwrap();
    let mut s = Solution::new(3);
    s.push(Clique::new(&[2, 3, 4]));
    s.push(Clique::new(&[8, 9, 10]));
    let mut solver = DynamicSolver::from_solution(&g1, s);

    // Adding (v5, v7) → G2: TrySwap trades (v3,v4,v5) for (v1,v2,v3) and
    // (v5,v6,v7), growing |S| to 3 (the paper's Section V-C walkthrough).
    solver.insert_edge(4, 6);
    assert_eq!(solver.len(), 3);
    let cliques = solver.solution().sorted_cliques();
    assert!(cliques.contains(&Clique::new(&[0, 1, 2])));
    assert!(cliques.contains(&Clique::new(&[4, 5, 6])));

    // Deleting (v5, v7) again → back to G1: the affected clique (v5,v6,v7)
    // dissolves and no candidate can replace it (v3 is taken), leaving
    // S = {(v1,v2,v3), (v9,v10,v11)} — "also a maximum disjoint 3-clique
    // set in G1" per the paper.
    solver.delete_edge(4, 6);
    assert_eq!(solver.len(), 2);
    let cliques = solver.solution().sorted_cliques();
    assert!(cliques.contains(&Clique::new(&[0, 1, 2])));
    assert!(cliques.contains(&Clique::new(&[8, 9, 10])));
    solver.validate().unwrap();
}

#[test]
fn theorem1_reduction_gadget_roundtrip() {
    // The NP-hardness proof builds a graph from a k-uniform hypergraph by
    // turning each hyperedge into a k-clique. For the 3-uniform hypergraph
    // {{0,1,2}, {2,3,4}, {4,5,0}} an exact cover needs disjoint hyperedges
    // covering all nodes — here impossible (6 nodes, overlapping triples);
    // the max disjoint set has 2 cliques covering 6 of 6? No: any two of
    // the three triangles intersect, so the maximum is 1... unless nodes
    // differ. Verify with OPT that the gadget behaves like the hypergraph.
    let edges = vec![
        (0, 1),
        (1, 2),
        (0, 2), // e1 = {0,1,2}
        (2, 3),
        (3, 4),
        (2, 4), // e2 = {2,3,4}
        (4, 5),
        (5, 0),
        (0, 4), // e3 = {4,5,0}
    ];
    let g = CsrGraph::from_edges(6, edges).unwrap();
    let opt = OptSolver::new().solve(&g, 3).unwrap();
    // e1 ∩ e2 = {2}, e2 ∩ e3 = {4}, e1 ∩ e3 = {0}: pairwise intersecting,
    // so no exact cover exists and the maximum disjoint set has size 1 —
    // unless extra triangles appeared from the union of gadget edges.
    // (0,2,4) IS such a triangle; it overlaps all three hyperedge cliques,
    // so the optimum is still 1.
    assert_eq!(opt.len(), 1);
}
