//! Property suite for the flat `CliqueStore` arena: round-trips with the
//! legacy `Vec<Clique>` representation are lossless, mutation mirrors the
//! boxed model exactly, and the arena listing collectors are
//! **bit-identical** to the legacy collectors for every kernel mode and
//! thread count — the contract that let the whole pipeline move onto the
//! arena without changing a single output byte.

use disjoint_kcliques::clique::{
    collect_kcliques_kernel, collect_kcliques_parallel_kernel, collect_kcliques_store_kernel,
    collect_kcliques_store_parallel_kernel, Clique, CliqueStore, KernelMode,
};
use disjoint_kcliques::graph::{Dag, NodeOrder, OrderingKind};
use disjoint_kcliques::prelude::*;
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (6..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| CsrGraph::from_edges(n as usize, edges).unwrap())
    })
}

/// Random `(k, cliques)` fixtures: sorted, duplicate-free rows of width
/// `k` over a small id space (rows may repeat and overlap — the store
/// imposes no disjointness).
fn cliques_strategy() -> impl Strategy<Value = (usize, Vec<Clique>)> {
    (2usize..=6).prop_flat_map(|k| {
        let row = proptest::collection::btree_set(0u32..64, k)
            .prop_map(|s| Clique::new(&s.into_iter().collect::<Vec<_>>()));
        (Just(k), proptest::collection::vec(row, 0..24))
    })
}

const MODES: [KernelMode; 3] = [KernelMode::Adaptive, KernelMode::Slice, KernelMode::Bitset];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Vec<Clique>` → arena → `Vec<Clique>` is the identity, and every
    /// row accessor agrees with the boxed representation.
    #[test]
    fn store_round_trips_the_boxed_representation((k, cliques) in cliques_strategy()) {
        let store = CliqueStore::from_cliques(k, &cliques);
        prop_assert_eq!(store.k(), k);
        prop_assert_eq!(store.len(), cliques.len());
        prop_assert_eq!(store.to_cliques(), cliques.clone());
        for (i, c) in cliques.iter().enumerate() {
            prop_assert_eq!(store.get(i), c.as_slice());
            prop_assert_eq!(&store.clique(i), c);
        }
        prop_assert_eq!(store.iter().count(), store.len());
        prop_assert_eq!(store.as_flat().len(), k * store.len());
        // Rebuilding from the flat buffer is also the identity.
        let rebuilt = CliqueStore::from_flat(k, store.as_flat().to_vec());
        prop_assert_eq!(&rebuilt, &store);
    }

    /// Arena `push`/`swap_remove` mirror the `Vec<Clique>` model move for
    /// move (swap_remove's replace-with-last included).
    #[test]
    fn mutation_mirrors_the_vec_model(
        (k, cliques) in cliques_strategy(),
        removals in proptest::collection::vec(0usize..1_000_000, 0..8),
    ) {
        let mut model: Vec<Clique> = Vec::new();
        let mut store = CliqueStore::new(k);
        for c in &cliques {
            model.push(*c);
            store.push(c.as_slice());
        }
        for idx in removals {
            if model.is_empty() {
                break;
            }
            let i = idx % model.len();
            let removed = store.swap_remove(i);
            prop_assert_eq!(removed, model.swap_remove(i));
            prop_assert_eq!(store.to_cliques(), model.clone());
        }
        store.sort_canonical();
        model.sort();
        prop_assert_eq!(store.to_cliques(), model);
    }

    /// The arena listing collectors emit the exact rows, in the exact
    /// order, of the legacy collectors — for every kernel mode, ordering,
    /// and thread count (1, 2, 8).
    #[test]
    fn arena_listing_is_bit_identical_to_legacy(
        g in graph_strategy(14, 70),
        k in 3usize..=4,
    ) {
        let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Degeneracy));
        for mode in MODES {
            let legacy = collect_kcliques_kernel(&dag, k, mode);
            let store = collect_kcliques_store_kernel(&dag, k, mode);
            prop_assert_eq!(&store.to_cliques(), &legacy, "sequential, mode {:?}", mode);
            for threads in [1usize, 2, 8] {
                let par = ParConfig::new(threads).with_chunk(2);
                let par_legacy = collect_kcliques_parallel_kernel(&dag, k, par, mode);
                let par_store = collect_kcliques_store_parallel_kernel(&dag, k, par, mode);
                prop_assert_eq!(&par_legacy, &legacy, "legacy parallel differs");
                prop_assert_eq!(
                    &par_store.to_cliques(), &legacy,
                    "arena parallel differs: mode {:?}, threads {}", mode, threads
                );
                // The flat buffer itself is the concatenation of the
                // legacy rows — the stronger, byte-level statement.
                let flat: Vec<u32> =
                    legacy.iter().flat_map(|c| c.as_slice().iter().copied()).collect();
                prop_assert_eq!(par_store.as_flat(), &flat[..]);
            }
        }
    }
}
