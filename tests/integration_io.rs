//! Graph ingestion round-trips feeding the solvers — the paths a user
//! takes with a real KONECT download: text parse, snapshot cache, and the
//! registry resolution chain.

use disjoint_kcliques::datagen::registry::social_standin;
use disjoint_kcliques::datagen::{DatasetRegistry, ResolvedFrom};
use disjoint_kcliques::graph::io::{
    load_graph, read_edge_list, read_edge_list_parallel, read_edge_list_str, write_edge_list_path,
    write_snapshot_path, LoadSource,
};
use disjoint_kcliques::prelude::*;

#[test]
fn file_roundtrip_preserves_solver_results() {
    let g = social_standin(500, 3000, 77);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dkc_io_test_{}.txt", std::process::id()));
    write_edge_list_path(&g, &path).unwrap();
    let loaded = read_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.graph.num_edges(), g.num_edges());
    // Node ids are permuted by interning order (and isolated nodes are not
    // representable in an edge list), which legitimately shifts greedy
    // tie-breaks — so compare solution sizes within a small band, not
    // exact cliques.
    let a = LightweightSolver::lp().solve(&g, 3).unwrap();
    let b = LightweightSolver::lp().solve(&loaded.graph, 3).unwrap();
    let band = (a.len() / 20).max(2);
    assert!(a.len().abs_diff(b.len()) <= band, "sizes diverged: {} vs {}", a.len(), b.len());
    b.verify(&loaded.graph).unwrap();
    b.verify_maximal(&loaded.graph).unwrap();
}

#[test]
fn konect_style_header_and_one_based_ids() {
    let text = "\
% asym positive
% 7 5
1 2 1 1167609600
2 3 1 1167609601
3 1 1 1167609602
4 5 1 1167609603
5 6 1 1167609604
6 4 1 1167609605
";
    let loaded = read_edge_list_str(text).unwrap();
    assert_eq!(loaded.graph.num_nodes(), 6);
    assert_eq!(loaded.graph.num_edges(), 6);
    let s = LightweightSolver::lp().solve(&loaded.graph, 3).unwrap();
    assert_eq!(s.len(), 2, "two disjoint triangles in the file");
}

#[test]
fn malformed_files_fail_loudly_not_silently() {
    assert!(read_edge_list_str("1 2\nnot numbers\n").is_err());
    assert!(read_edge_list_str("3\n").is_err());
    let missing = read_edge_list(std::path::Path::new("/definitely/not/here.txt"));
    assert!(missing.is_err());
}

/// The full pipeline a cached dataset takes: text file → parallel parse →
/// snapshot write → auto-detected snapshot load — with identical solver
/// results at every stage.
#[test]
fn text_and_snapshot_paths_solve_identically() {
    let g = social_standin(800, 5000, 91);
    let dir = std::env::temp_dir();
    let text_path = dir.join(format!("dkc_pipeline_{}.txt", std::process::id()));
    let snap_path = dir.join(format!("dkc_pipeline_{}.dkcsr", std::process::id()));
    write_edge_list_path(&g, &text_path).unwrap();

    let (from_text, stats) = read_edge_list_parallel(&text_path, ParConfig::new(4)).unwrap();
    assert_eq!(stats.self_loops, 0);
    assert_eq!(stats.edge_records, g.num_edges());
    write_snapshot_path(&from_text, &snap_path).unwrap();

    let (auto_text, report_text) = load_graph(&text_path, ParConfig::new(2)).unwrap();
    let (auto_snap, report_snap) = load_graph(&snap_path, ParConfig::new(2)).unwrap();
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&snap_path).ok();

    assert_eq!(report_text.source, LoadSource::Text);
    assert_eq!(report_snap.source, LoadSource::Snapshot);
    assert_eq!(auto_text.graph, from_text.graph);
    assert_eq!(auto_snap.graph, from_text.graph, "snapshot must decode to the same CSR");
    assert_eq!(auto_snap.labels, from_text.labels, "snapshot must decode to the same labels");

    let a = LightweightSolver::lp().solve(&auto_text.graph, 3).unwrap();
    let b = LightweightSolver::lp().solve(&auto_snap.graph, 3).unwrap();
    assert_eq!(a, b, "identical graph ⇒ identical solution");
    a.verify(&auto_text.graph).unwrap();
}

/// Registry resolution chain end-to-end: a user-supplied edge list wins
/// over the synthetic stand-in, gets cached as a snapshot, and the cached
/// copy solves identically.
#[test]
fn registry_resolution_preserves_solver_results() {
    let dir = std::env::temp_dir().join(format!("dkc_int_registry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = social_standin(400, 2400, 33);
    write_edge_list_path(&g, dir.join("custom.txt")).unwrap();

    let registry = DatasetRegistry::new(&dir);
    let first = registry.resolve("custom", || panic!("text file must win")).unwrap();
    assert_eq!(first.from, ResolvedFrom::TextFile);
    let second = registry.resolve("custom", || panic!("cache must win")).unwrap();
    assert_eq!(second.from, ResolvedFrom::SnapshotCache);
    assert_eq!(first.loaded.graph, second.loaded.graph);

    let a = LightweightSolver::lp().solve(&first.loaded.graph, 4).unwrap();
    let b = LightweightSolver::lp().solve(&second.loaded.graph, 4).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}
