//! Edge-list I/O round-trips feeding the solvers — the path a user takes
//! with a real KONECT download.

use disjoint_kcliques::datagen::registry::social_standin;
use disjoint_kcliques::graph::io::{read_edge_list, read_edge_list_str, write_edge_list_path};
use disjoint_kcliques::prelude::*;

#[test]
fn file_roundtrip_preserves_solver_results() {
    let g = social_standin(500, 3000, 77);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dkc_io_test_{}.txt", std::process::id()));
    write_edge_list_path(&g, &path).unwrap();
    let loaded = read_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.graph.num_edges(), g.num_edges());
    // Node ids are permuted by interning order (and isolated nodes are not
    // representable in an edge list), which legitimately shifts greedy
    // tie-breaks — so compare solution sizes within a small band, not
    // exact cliques.
    let a = LightweightSolver::lp().solve(&g, 3).unwrap();
    let b = LightweightSolver::lp().solve(&loaded.graph, 3).unwrap();
    let band = (a.len() / 20).max(2);
    assert!(a.len().abs_diff(b.len()) <= band, "sizes diverged: {} vs {}", a.len(), b.len());
    b.verify(&loaded.graph).unwrap();
    b.verify_maximal(&loaded.graph).unwrap();
}

#[test]
fn konect_style_header_and_one_based_ids() {
    let text = "\
% asym positive
% 7 5
1 2 1 1167609600
2 3 1 1167609601
3 1 1 1167609602
4 5 1 1167609603
5 6 1 1167609604
6 4 1 1167609605
";
    let loaded = read_edge_list_str(text).unwrap();
    assert_eq!(loaded.graph.num_nodes(), 6);
    assert_eq!(loaded.graph.num_edges(), 6);
    let s = LightweightSolver::lp().solve(&loaded.graph, 3).unwrap();
    assert_eq!(s.len(), 2, "two disjoint triangles in the file");
}

#[test]
fn malformed_files_fail_loudly_not_silently() {
    assert!(read_edge_list_str("1 2\nnot numbers\n").is_err());
    assert!(read_edge_list_str("3\n").is_err());
    let missing = read_edge_list(std::path::Path::new("/definitely/not/here.txt"));
    assert!(missing.is_err());
}
