//! End-to-end dynamic maintenance: update streams on generated graphs must
//! keep all invariants and stay competitive with recompute-from-scratch.

use disjoint_kcliques::datagen::registry::social_standin;
use disjoint_kcliques::datagen::workload::{
    paper_mixed_workload, sample_edges, sample_non_edges, Update,
};
use disjoint_kcliques::datagen::{relaxed_caveman, watts_strogatz};
use disjoint_kcliques::prelude::*;

#[test]
fn deletion_then_insertion_workload_roundtrips() {
    let g = relaxed_caveman(20, 5, 0.1, 3);
    let k = 3;
    let mut solver = DynamicSolver::new(&g, k).unwrap();
    let initial = solver.len();
    let victims = sample_edges(&g, 40, 5);

    for &(a, b) in &victims {
        solver.delete_edge(a, b);
    }
    solver.validate().unwrap();
    let after_del = solver.len();
    assert!(after_del <= initial, "deletions cannot grow the graph's optimum here");

    for &(a, b) in &victims {
        solver.insert_edge(a, b);
    }
    solver.validate().unwrap();
    assert!(
        solver.len() >= initial,
        "after restoring the graph the maintained S must be at least as large: {} vs {}",
        solver.len(),
        initial
    );
    // The final graph is exactly g again.
    assert_eq!(solver.graph().to_csr(), g);
}

#[test]
fn mixed_workload_matches_scratch_quality_closely() {
    let g = social_standin(500, 2500, 17);
    let k = 3;
    let (start, updates) = paper_mixed_workload(&g, 60, 23);
    let mut solver = DynamicSolver::new(&start, k).unwrap();
    for u in &updates {
        match *u {
            Update::Insert(a, b) => {
                solver.insert_edge(a, b);
            }
            Update::Delete(a, b) => {
                solver.delete_edge(a, b);
            }
        }
    }
    solver.validate().unwrap();
    let scratch = LightweightSolver::lp().solve(&solver.graph().to_csr(), k).unwrap();
    let delta = solver.len() as i64 - scratch.len() as i64;
    // Table VIII's observation: the maintained S stays within a small band
    // of a rebuild (sometimes above it, thanks to local swaps).
    let band = (scratch.len() as i64 / 10).max(5);
    assert!(
        delta.abs() <= band,
        "maintained {} vs scratch {} (Δ = {delta})",
        solver.len(),
        scratch.len()
    );
}

#[test]
fn insertions_only_grow_or_preserve_s() {
    let g = watts_strogatz(200, 6, 0.1, 31);
    let k = 3;
    let mut solver = DynamicSolver::new(&g, k).unwrap();
    let mut last = solver.len();
    for (a, b) in sample_non_edges(&g, 150, 37) {
        solver.insert_edge(a, b);
        assert!(solver.len() >= last, "an insertion shrank |S| from {last} to {}", solver.len());
        last = solver.len();
    }
    solver.validate().unwrap();
}

#[test]
fn stats_and_index_size_stay_consistent() {
    let g = relaxed_caveman(12, 5, 0.2, 41);
    let mut solver = DynamicSolver::new(&g, 3).unwrap();
    let victims = sample_edges(&g, 20, 43);
    for &(a, b) in &victims {
        solver.delete_edge(a, b);
    }
    for &(a, b) in &victims {
        solver.insert_edge(a, b);
    }
    let stats = *solver.stats();
    assert_eq!(stats.deletions, 20);
    assert_eq!(stats.insertions, 20);
    assert!(stats.cliques_added >= stats.swaps_applied);
    // Index must match a fresh Algorithm 5 run (validate checks contents;
    // here we sanity-check the reported size too).
    let fresh = disjoint_kcliques::dynamic::CandidateIndex::build(
        solver.graph(),
        &disjoint_kcliques::dynamic::SolutionState::from_solution(
            &solver.solution(),
            solver.graph().num_nodes(),
        ),
    );
    assert_eq!(solver.index_size(), fresh.len());
}

#[test]
fn serving_view_tracks_the_maintained_solution() {
    // The snapshot API end to end, through the facade prelude: epochs
    // advance per batch, `group_of` matches the published groups, and a
    // durable restart reproduces the exact view.
    let g = relaxed_caveman(16, 5, 0.15, 71);
    let dir = std::env::temp_dir().join(format!("dkc_integ_serving_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut serving = ServingSolver::create(&dir, &g, SolveRequest::new(Algo::Lp, 3)).unwrap();
    let reader = serving.reader();
    assert_eq!(reader.current().epoch(), 0);

    let victims = sample_edges(&g, 30, 73);
    let updates: Vec<EdgeUpdate> = victims.iter().map(|&(a, b)| EdgeUpdate::Delete(a, b)).collect();
    for chunk in updates.chunks(6) {
        serving.apply_batch(chunk).unwrap();
    }
    let view = reader.current();
    assert_eq!(view.epoch(), 5);
    // Membership is consistent with the group list.
    for (i, clique) in view.cliques().iter().enumerate() {
        for &u in clique {
            assert_eq!(view.group_of(u), Some(i));
        }
    }
    assert_eq!(view.to_solution().sorted_cliques(), serving.solver().solution().sorted_cliques());

    // Kill + restore: byte-identical view, then both sides stay in step.
    drop(serving);
    let restored = ServingSolver::restore(&dir).unwrap();
    assert_eq!(*restored.view(), *view);
    restored.solver().validate().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heavy_churn_on_k4() {
    let g = social_standin(300, 1800, 53);
    let k = 4;
    let mut solver = DynamicSolver::new(&g, k).unwrap();
    let dels = sample_edges(&g, 60, 59);
    let inss = sample_non_edges(&g, 60, 61);
    for i in 0..60 {
        solver.delete_edge(dels[i].0, dels[i].1);
        solver.insert_edge(inss[i].0, inss[i].1);
    }
    solver.validate().unwrap();
    let scratch = LightweightSolver::lp().solve(&solver.graph().to_csr(), k).unwrap();
    assert!(
        disjoint_kcliques::core::approx_guarantee_holds(
            // scratch is itself maximal, not optimal; use it as a floor probe
            scratch.len(),
            solver.len(),
            k
        ),
        "maintained {} vs scratch {}",
        solver.len(),
        scratch.len()
    );
}
