//! End-to-end tests of the `dkc bench` CLI: the append-only trajectory
//! file grows by exactly one parseable line per run, and `--check` gates
//! the fresh run against a baseline file with the right exit status.

use disjoint_kcliques::json::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dkc-bench-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A `dkc bench` invocation small enough for a test, fully pinned.
fn bench_cmd(dir: &Path, out: &Path, stamp: &str, rev: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dkc"));
    cmd.current_dir(dir).args([
        "bench",
        "--dataset",
        "FTB",
        "--scale",
        "0.3",
        "--seed",
        "7",
        "--k",
        "3",
        "--reps",
        "1",
        "--threads",
        "2",
        "--conns",
        "1",
        "--ops",
        "8",
        "--warmup",
        "2",
        "--batches",
        "2",
        "--batch-size",
        "4",
        "--host",
        "testhost",
        "--stamp",
        stamp,
        "--git-rev",
        rev,
        "--out",
    ]);
    cmd.arg(out).arg("--scratch").arg(dir.join("scratch"));
    cmd
}

#[test]
fn two_runs_append_two_parseable_lines() {
    let dir = scratch_dir("append");
    let out = dir.join("BENCH_testhost.json");
    for (stamp, rev) in [("run-1", "rev-1"), ("run-2", "rev-2")] {
        let output = bench_cmd(&dir, &out, stamp, rev).output().expect("dkc bench runs");
        assert!(
            output.status.success(),
            "bench failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        // The appended line is also echoed on stdout.
        let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
        assert!(stdout.trim().starts_with('{'), "stdout carries the line: {stdout}");
    }
    let text = std::fs::read_to_string(&out).expect("trajectory file exists");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 2, "one line per run:\n{text}");
    for (line, rev) in lines.iter().zip(["rev-1", "rev-2"]) {
        let v = Json::parse(line).expect("line is valid JSON");
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("git_rev").and_then(Json::as_str), Some(rev));
        assert_eq!(v.get("host").and_then(Json::as_str), Some("testhost"));
        let metrics = v.get("metrics").expect("metrics object");
        for name in [
            "listing_ns",
            "lp_solve_ns",
            "partition_ns",
            "snapshot_load_ns",
            "apply_batch_ns",
            "serve_p99_us",
        ] {
            assert!(
                metrics.get(name).and_then(|m| m.get("median")).and_then(Json::as_u64).is_some(),
                "metric {name} missing from {line}"
            );
        }
    }
}

#[test]
fn check_passes_on_own_baseline_and_fails_on_inflated_counter() {
    let dir = scratch_dir("check");
    let out = dir.join("bench.json");
    let status = bench_cmd(&dir, &out, "base", "base").status().expect("baseline run");
    assert!(status.success());
    let baseline_text = std::fs::read_to_string(&out).expect("baseline written");

    // Checking a fresh identical run against it passes (exit 0).
    let good = dir.join("baseline.json");
    std::fs::write(&good, &baseline_text).unwrap();
    let status = bench_cmd(&dir, &out, "fresh", "fresh")
        .arg("--check")
        .arg(&good)
        .status()
        .expect("check run");
    assert!(status.success(), "identical-config check must pass");

    // Hand-inflating a tightly gated counter must fail the gate (nonzero
    // exit), which is exactly what the CI perf-gate job relies on.
    let line = Json::parse(baseline_text.lines().next().unwrap()).unwrap();
    let Json::Obj(mut members) = line else { panic!("line is an object") };
    for (key, value) in &mut members {
        if key == "metrics" {
            let Json::Obj(metrics) = value else { panic!("metrics is an object") };
            for (name, m) in metrics.iter_mut() {
                if name == "kcliques" {
                    *m = Json::Obj(vec![
                        ("median".into(), Json::u64(999_999)),
                        ("min".into(), Json::u64(999_999)),
                    ]);
                }
            }
        }
    }
    let bad = dir.join("bad_baseline.json");
    std::fs::write(&bad, Json::Obj(members).render() + "\n").unwrap();
    let output = bench_cmd(&dir, &out, "fresh2", "fresh2")
        .arg("--check")
        .arg(&bad)
        .output()
        .expect("failing check run");
    assert!(!output.status.success(), "inflated baseline counter must fail the gate");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("perf gate FAILED"), "{stderr}");
    assert!(stderr.contains("kcliques"), "{stderr}");
}
