//! Facade-level checks of the unified engine API: request → report for
//! every algorithm, JSON round-trips, engine-backed partitioning, and the
//! registry's snapshot-cache eviction counters.

use disjoint_kcliques::datagen::registry::{social_standin, DatasetId};
use disjoint_kcliques::datagen::{DatasetRegistry, EvictFilter};
use disjoint_kcliques::prelude::*;

#[test]
fn every_algo_solves_through_the_engine_and_reports_provenance() {
    let g = social_standin(26, 95, 11);
    for algo in Algo::ALL {
        let req = SolveRequest::new(algo, 3).with_budget(Budget::standard()).with_threads(2);
        let report = Engine::solve(&g, req).unwrap_or_else(|e| panic!("{algo}: {e}"));
        report.solution.verify(&g).unwrap();
        report.solution.verify_maximal(&g).unwrap();
        assert_eq!(report.algo, algo);
        assert_eq!(report.k, 3);
        assert_eq!(report.threads, 2);
        assert_eq!(report.budget, Budget::standard());
        assert!(!report.phases.is_empty());
    }
}

#[test]
fn solve_report_json_roundtrips_through_the_facade() {
    let g = social_standin(26, 95, 11);
    let report = Engine::solve(&g, SolveRequest::new(Algo::Lp, 3)).unwrap();
    let json = report.to_json();
    let back = SolveReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    // The parsed solution still verifies against the graph.
    back.solution.verify(&g).unwrap();
}

#[test]
fn engine_partition_report_covers_every_node() {
    let g = social_standin(40, 130, 3);
    let report = Engine::partition_all(&g, SolveRequest::new(Algo::Lp, 4)).unwrap();
    let mut seen = vec![false; g.num_nodes()];
    for group in &report.partition.groups {
        assert!(!group.is_empty() && group.len() <= 4);
        for &u in group {
            assert!(!seen[u as usize], "node {u} in two groups");
            seen[u as usize] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "every node must be assigned");
    let json = report.to_json();
    assert!(json.contains("\"num_groups\""), "{json}");
}

#[test]
fn cache_eviction_forces_a_miss_then_a_rebuild() {
    let dir = std::env::temp_dir().join(format!("dkc_engine_evict_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Warm: synthetic build + cache write.
    let reg = DatasetRegistry::new(&dir);
    reg.resolve_standin(DatasetId::Ftb, 0.5, 9).unwrap();
    let s = reg.stats();
    assert_eq!((s.synthetic_builds, s.cache_writes, s.snapshot_hits), (1, 1, 0));

    // Re-resolve: pure cache hit, no regeneration.
    reg.resolve_standin(DatasetId::Ftb, 0.5, 9).unwrap();
    assert_eq!(reg.stats().snapshot_hits, 1);
    assert_eq!(reg.stats().synthetic_builds, 1);

    // Evict exactly that scale/seed entry, then resolve again: the hit
    // counter stays put and a fresh synthetic build (plus write-back)
    // happens instead.
    let removed = reg
        .evict_standins(&EvictFilter {
            dataset: Some(DatasetId::Ftb),
            scale: Some(0.5),
            seed: Some(9),
        })
        .unwrap();
    assert_eq!(removed, 1);
    reg.resolve_standin(DatasetId::Ftb, 0.5, 9).unwrap();
    let s = reg.stats();
    assert_eq!(s.snapshot_hits, 1, "no further hits after eviction");
    assert_eq!(s.synthetic_builds, 2, "eviction forces a regeneration");
    assert_eq!(s.cache_writes, 2);
    assert_eq!(s.evictions, 1);
    assert!(reg.stats_line().contains("evictions=1"), "{}", reg.stats_line());

    // And the rebuilt entry hits again.
    reg.resolve_standin(DatasetId::Ftb, 0.5, 9).unwrap();
    assert_eq!(reg.stats().snapshot_hits, 2);

    std::fs::remove_dir_all(&dir).ok();
}
