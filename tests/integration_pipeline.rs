//! End-to-end static pipeline: generators → listing → solvers → analysis,
//! spanning every crate through the facade.

use disjoint_kcliques::clique::{count_kcliques, node_scores};
use disjoint_kcliques::core::{
    approx_guarantee_holds, verify_theorem2, GcSolver, GreedyCliqueGraphSolver, OptSolver,
};
use disjoint_kcliques::datagen::{
    erdos_renyi_gnm, planted_partition, relaxed_caveman, watts_strogatz,
};
use disjoint_kcliques::graph::{Dag, NodeOrder};
use disjoint_kcliques::prelude::*;

fn all_heuristics() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(HgSolver::default()),
        Box::new(GcSolver::new()),
        Box::new(LightweightSolver::l()),
        Box::new(LightweightSolver::lp()),
        Box::new(GreedyCliqueGraphSolver::default()),
    ]
}

#[test]
fn every_solver_is_valid_and_maximal_on_generated_graphs() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("erdos-renyi", erdos_renyi_gnm(150, 700, 1)),
        ("watts-strogatz", watts_strogatz(150, 6, 0.1, 2)),
        ("caveman", relaxed_caveman(15, 5, 0.2, 3)),
    ];
    for (name, g) in &graphs {
        for k in 3..=4 {
            for solver in all_heuristics() {
                let s =
                    solver.solve(g, k).unwrap_or_else(|e| panic!("{name}/{}: {e}", solver.name()));
                s.verify(g).unwrap_or_else(|e| panic!("{name}/{}: {e}", solver.name()));
                s.verify_maximal(g).unwrap_or_else(|e| panic!("{name}/{}: {e}", solver.name()));
            }
        }
    }
}

#[test]
fn planted_optimum_is_recovered_exactly_on_clean_instances() {
    for k in 3..=5 {
        let p = planted_partition(12, k, 10, 0.0, 7);
        for solver in all_heuristics() {
            let s = solver.solve(&p.graph, k).unwrap();
            assert_eq!(
                s.len(),
                p.planted_count(),
                "{} missed planted cliques at k={k}",
                solver.name()
            );
        }
    }
}

#[test]
fn planted_with_noise_stays_within_the_k_approximation() {
    let k = 3;
    let p = planted_partition(12, k, 20, 0.05, 9);
    let opt = OptSolver::new().solve(&p.graph, k).unwrap();
    assert!(opt.len() >= p.planted_count(), "optimum is at least the plant");
    for solver in all_heuristics() {
        let s = solver.solve(&p.graph, k).unwrap();
        assert!(
            approx_guarantee_holds(opt.len(), s.len(), k),
            "{}: {} vs opt {}",
            solver.name(),
            s.len(),
            opt.len()
        );
    }
}

#[test]
fn node_scores_drive_the_lightweight_solver_consistently() {
    // The LP pipeline recomputed by hand: scores from one listing pass,
    // score-ascending order, and the solution's covered nodes are exactly
    // k * |S| distinct nodes.
    let g = relaxed_caveman(25, 5, 0.1, 5);
    let k = 3;
    let dag = Dag::from_graph(&g, NodeOrder::compute(&g, OrderingKind::Degeneracy));
    let scores = node_scores(&dag, k);
    assert_eq!(scores.iter().sum::<u64>(), 3 * count_kcliques(&dag, k));

    let s = LightweightSolver::lp().solve(&g, k).unwrap();
    let covered: std::collections::HashSet<NodeId> = s.iter_nodes().collect();
    assert_eq!(covered.len(), s.covered_nodes());
    // Every member of every chosen clique has a positive score.
    for u in s.iter_nodes() {
        assert!(scores[u as usize] >= 1);
    }
}

#[test]
fn theorem2_holds_on_structured_and_random_graphs() {
    for (g, k) in [
        (relaxed_caveman(12, 5, 0.2, 11), 3usize),
        (erdos_renyi_gnm(60, 500, 13), 4usize),
        (watts_strogatz(100, 6, 0.05, 17), 3usize),
    ] {
        verify_theorem2(&g, k).unwrap();
    }
}

#[test]
fn partition_all_covers_every_node_once() {
    let g = watts_strogatz(120, 6, 0.1, 23);
    let p = partition_all(&g, 4).unwrap();
    let mut seen = vec![false; g.num_nodes()];
    for group in &p.groups {
        for &u in group {
            assert!(!seen[u as usize], "node {u} appears twice");
            seen[u as usize] = true;
        }
    }
    assert!(seen.iter().all(|&x| x));
}

#[test]
fn opt_dominates_every_heuristic_on_small_inputs() {
    let g = erdos_renyi_gnm(40, 220, 29);
    for k in 3..=4 {
        let opt = OptSolver::new().solve(&g, k).unwrap();
        for solver in all_heuristics() {
            let s = solver.solve(&g, k).unwrap();
            assert!(
                s.len() <= opt.len(),
                "{} beat OPT?! {} > {}",
                solver.name(),
                s.len(),
                opt.len()
            );
        }
    }
}
