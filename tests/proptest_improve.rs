//! Property suite for the `dkc-improve` local-search pass, driven through
//! the facade: on random graphs and random constructions the pass must
//! never lose groups, must return a valid *maximal* solution, and must be
//! a pure function of `(graph, solution, seed, budget)` — bit-identical
//! (cliques, stats and trace) for every thread count.

use disjoint_kcliques::improve::{improve, ImproveConfig};
use disjoint_kcliques::prelude::*;
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (6..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| CsrGraph::from_edges(n as usize, edges).unwrap())
    })
}

/// Runs a construction and hands back `(graph, base solution)`.
fn construct(g: &CsrGraph, algo: Algo, k: usize) -> Solution {
    Engine::solve(g, SolveRequest::new(algo, k)).expect("construction cannot fail").solution
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |S| never decreases, and the improved set is a valid maximal
    /// solution — for both the greedy (HG) and flagship (LP) bases.
    #[test]
    fn never_decreases_and_stays_valid_maximal(
        g in graph_strategy(14, 60),
        k in 3usize..=4,
        steps in 1u64..64,
        seed in 0u64..1024,
        use_hg in any::<bool>(),
    ) {
        let base = construct(&g, if use_hg { Algo::Hg } else { Algo::Lp }, k);
        let dg = DynGraph::from_csr(&g);
        let out = improve(&dg, k, base.store(), &ImproveConfig::new(steps, seed));
        prop_assert!(
            out.cliques.len() >= base.len(),
            "improve shrank |S|: {} -> {}", base.len(), out.cliques.len()
        );
        prop_assert_eq!(out.cliques.len() as u64, base.len() as u64 + out.stats.uplift);
        prop_assert!(out.stats.moves_applied <= out.stats.moves_tried);
        let mut improved = Solution::new(k);
        for &c in &out.cliques {
            improved.push(c);
        }
        improved.verify(&g).map_err(|e| TestCaseError::fail(format!("invalid: {e}")))?;
        improved
            .verify_maximal(&g)
            .map_err(|e| TestCaseError::fail(format!("not maximal: {e}")))?;
    }

    /// The outcome — cliques, stats, AND the move trace — is identical
    /// for 1, 2 and 8 threads.
    #[test]
    fn outcome_is_bit_identical_across_thread_counts(
        g in graph_strategy(14, 60),
        k in 3usize..=4,
        steps in 1u64..64,
        seed in 0u64..1024,
    ) {
        let base = construct(&g, Algo::Hg, k);
        let dg = DynGraph::from_csr(&g);
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let cfg = ImproveConfig::new(steps, seed)
                    .with_par(ParConfig::default().with_threads(threads));
                improve(&dg, k, base.store(), &cfg)
            })
            .collect();
        for other in &runs[1..] {
            prop_assert_eq!(&runs[0].cliques, &other.cliques);
            prop_assert_eq!(&runs[0].stats, &other.stats);
            prop_assert_eq!(&runs[0].trace, &other.trace);
        }
    }

    /// Improving an already-improved solution with the same budget again
    /// is still monotone (anytime semantics: more budget never hurts).
    #[test]
    fn reapplication_is_monotone(
        g in graph_strategy(12, 50),
        steps in 1u64..32,
        seed in 0u64..256,
    ) {
        let k = 3;
        let base = construct(&g, Algo::Hg, k);
        let dg = DynGraph::from_csr(&g);
        let first = improve(&dg, k, base.store(), &ImproveConfig::new(steps, seed));
        let second = improve(&dg, k, &CliqueStore::from_cliques(k, &first.cliques), &ImproveConfig::new(steps, seed + 1));
        prop_assert!(second.cliques.len() >= first.cliques.len());
    }
}
