//! Guards the vendored `proptest` stand-in: the crate-level property suites
//! (e.g. `crates/clique/tests/proptests.rs`) only mean something if the
//! macro really runs every case and the strategies really generate
//! non-degenerate graphs. This test replicates the suites' exact
//! `graph_strategy` shape and measures what comes out.

use disjoint_kcliques::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static CASES: AtomicU64 = AtomicU64::new(0);
static NODES: AtomicU64 = AtomicU64::new(0);
static EDGES: AtomicU64 = AtomicU64::new(0);
static TRIANGLE_CASES: AtomicU64 = AtomicU64::new(0);

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (4..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| CsrGraph::from_edges(n as usize, edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Not marked #[test]: driven explicitly by `vendored_proptest_is_not_degenerate`
    // below so the stats can be checked after all cases ran.
    fn probe(g in graph_strategy(14, 70)) {
        CASES.fetch_add(1, Ordering::Relaxed);
        NODES.fetch_add(g.num_nodes() as u64, Ordering::Relaxed);
        EDGES.fetch_add(g.num_edges() as u64, Ordering::Relaxed);
        let dag = disjoint_kcliques::graph::Dag::from_graph(
            &g,
            disjoint_kcliques::graph::NodeOrder::compute(&g, OrderingKind::Degeneracy),
        );
        if disjoint_kcliques::clique::count_kcliques(&dag, 3) > 0 {
            TRIANGLE_CASES.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[test]
fn vendored_proptest_is_not_degenerate() {
    probe();
    let cases = CASES.load(Ordering::Relaxed);
    let nodes = NODES.load(Ordering::Relaxed);
    let edges = EDGES.load(Ordering::Relaxed);
    let with_triangles = TRIANGLE_CASES.load(Ordering::Relaxed);

    // The macro must honour the configured case count (modulo a CI
    // override through PROPTEST_CASES).
    if std::env::var("PROPTEST_CASES").is_err() {
        assert_eq!(cases, 64, "configured 64 cases must all run");
    } else {
        assert!(cases > 0);
    }
    // Node counts are uniform in 4..=14, so the mean must sit well inside;
    // edge lists are uniform in 0..70 *candidate* pairs (self-loops and
    // duplicates drop out), so plenty of real edges must survive.
    let mean_nodes = nodes as f64 / cases as f64;
    let mean_edges = edges as f64 / cases as f64;
    assert!((6.0..=12.0).contains(&mean_nodes), "mean nodes {mean_nodes}");
    assert!(mean_edges >= 10.0, "mean edges {mean_edges} — generation looks degenerate");
    // Dense-ish random graphs on ≤ 14 nodes contain triangles more often
    // than not; if almost none do, the k-clique suites test nothing.
    assert!(
        with_triangles * 2 >= cases,
        "only {with_triangles}/{cases} generated graphs contain a triangle"
    );
}

#[test]
fn vendored_proptest_reports_failures_with_seed() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn always_fails(x in 0u32..100) {
            prop_assert!(x > 1000, "x = {}", x);
        }
    }
    let err = std::panic::catch_unwind(always_fails).expect_err("property must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("PROPTEST_SEED="), "panic must carry the repro seed, got: {msg}");
}

#[test]
fn vendored_proptest_wraps_body_panics_with_seed() {
    // Properties call `.unwrap()` on library code; a panic (not just a
    // prop_assert failure) must still surface the seed/case repro line.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn panics_mid_body(x in 0u32..100) {
            let none: Option<u32> = if x < 1000 { None } else { Some(x) };
            let _ = none.expect("boom: no value");
        }
    }
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the double panic quiet
    let err = std::panic::catch_unwind(panics_mid_body).expect_err("body must panic");
    std::panic::set_hook(prev_hook);
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("PROPTEST_SEED=") && msg.contains("boom: no value"),
        "panic must carry both the repro seed and the original message, got: {msg}"
    );
}
